"""Array-native routing tables: columnar storage for full-BGP-scale snapshots.

A million-prefix table materialised as :class:`~repro.routing.prefix.Prefix`
objects costs ~200 bytes per route before any trie is built (a ``Prefix``,
its cached hash, and a dict slot).  :class:`ArrayRoutingTable` stores the
same routes as three parallel columns — value, length, next hop — in
insertion order, and only *inflates* to the classic ``Dict[Prefix, NextHop]``
representation when a consumer genuinely needs Prefix objects (mutation, or
a Prefix-level query).  Until then:

* bulk readers (`as_arrays`, the packed trie builders via
  :func:`repro.tries.base.sorted_route_arrays`) get the columns directly,
  with no per-prefix objects at any point;
* cheap aggregate queries (``len``, ``length_histogram``,
  ``has_default_route``, ``next_hops``) run vectorized on the columns;
* exact-match ``get``/``in`` use a packed-key index built once on demand,
  still without Prefix objects.

Inflation is one-way: the first mutation (or direct ``_routes`` access)
builds the dict, drops the columns, and the instance behaves exactly like a
plain :class:`RoutingTable` from then on.  Iteration order — and therefore
every downstream deterministic build — is identical in both regimes.

Widths above 64 bits (IPv6) store values as a Python ``list`` of ints since
128-bit values exceed numpy integer dtypes; lengths and hops stay numpy.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import TableError
from .prefix import Prefix
from .table import NO_ROUTE, NextHop, RoutingTable

#: Values column: numpy for widths <= 64, plain ints beyond.
ValueColumn = Union[np.ndarray, List[int]]


class ArrayRoutingTable(RoutingTable):
    """A :class:`RoutingTable` backed by parallel (value, length, hop) columns.

    Construct via :meth:`RoutingTable.from_arrays` (which validates) or
    directly with pre-validated columns (``validate=False``) from the
    synthetic generators.  Semantically identical to a dict-backed table;
    the dict is materialised lazily on first need.
    """

    def __init__(
        self,
        values: ValueColumn,
        lengths: np.ndarray,
        hops: np.ndarray,
        width: int,
        *,
        validate: bool = True,
    ) -> None:
        # NOTE: deliberately does not call RoutingTable.__init__ — that
        # would eagerly create the dict this class exists to avoid.
        self.width = width
        if width <= 64:
            values = np.asarray(values, dtype=np.uint64)
        lengths = np.asarray(lengths, dtype=np.int64)
        hops = np.asarray(hops, dtype=np.int64)
        n = len(values)
        if len(lengths) != n or len(hops) != n:
            raise TableError(
                f"column lengths differ: {n} values, {len(lengths)} lengths, "
                f"{len(hops)} hops"
            )
        if validate:
            self._validate(values, lengths, width)
        self._a_values: Optional[ValueColumn] = values
        self._a_lengths: Optional[np.ndarray] = lengths
        self._a_hops: Optional[np.ndarray] = hops
        self._dict: Optional[Dict[Prefix, NextHop]] = None
        self._index: Optional[Dict[tuple, int]] = None
        self.version = n

    @staticmethod
    def _validate(
        values: ValueColumn, lengths: np.ndarray, width: int
    ) -> None:
        n = len(values)
        if n == 0:
            return
        if lengths.size and (
            int(lengths.min()) < 0 or int(lengths.max()) > width
        ):
            bad = int(lengths[(lengths < 0) | (lengths > width)][0])
            raise TableError(f"length {bad} out of range [0, {width}]")
        if width <= 64:
            vals = np.asarray(values, dtype=np.uint64)
            shifts = (width - lengths).astype(np.uint64)
            # Host-bit check: zeroing the host bits must be a no-op.  A
            # length-0 row shifts by the full width — well-defined here
            # only because numpy masks shift counts; special-case it.
            masked = np.where(
                lengths == 0,
                np.uint64(0),
                (vals >> shifts) << shifts,
            )
            if not np.array_equal(masked, vals):
                i = int(np.nonzero(masked != vals)[0][0])
                raise TableError(
                    f"host bits of {int(vals[i]):#x}/{int(lengths[i])} "
                    f"are not zero (width {width})"
                )
            # duplicate check via packed keys (value << 8 | length needs
            # width + 8 <= 64 bits; widths up to 56 pack, else lexsort).
            if width <= 56:
                keys = (vals.astype(np.int64) << 8) | lengths
                uniq = np.unique(keys)
                if uniq.size != n:
                    raise TableError("duplicate route in from_arrays columns")
            else:
                order = np.lexsort((lengths, vals))
                sv, sl = vals[order], lengths[order]
                dup = (sv[1:] == sv[:-1]) & (sl[1:] == sl[:-1])
                if bool(dup.any()):
                    raise TableError("duplicate route in from_arrays columns")
        else:
            seen = set()
            for v, l in zip(values, lengths.tolist()):
                v = int(v)
                if v & ((1 << (width - l)) - 1):
                    raise TableError(
                        f"host bits of {v:#x}/{l} are not zero (width {width})"
                    )
                key = (v, l)
                if key in seen:
                    raise TableError("duplicate route in from_arrays columns")
                seen.add(key)

    # -- lazy dict ---------------------------------------------------------

    def _inflate(self) -> Dict[Prefix, NextHop]:
        values, lengths, hops = self._a_values, self._a_lengths, self._a_hops
        width = self.width
        d: Dict[Prefix, NextHop] = {}
        if values is not None:
            vlist = values.tolist() if isinstance(values, np.ndarray) else values
            for v, l, h in zip(vlist, lengths.tolist(), hops.tolist()):
                d[Prefix(int(v), int(l), width)] = int(h)
        # Columns are dropped: the dict is authoritative from here on.
        self._a_values = self._a_lengths = self._a_hops = None
        self._index = None
        return d

    @property
    def _routes(self) -> Dict[Prefix, NextHop]:
        d = self._dict
        if d is None:
            d = self._inflate()
            self._dict = d
        return d

    @_routes.setter
    def _routes(self, value: Dict[Prefix, NextHop]) -> None:
        self._dict = value
        self._a_values = self._a_lengths = self._a_hops = None
        self._index = None

    @property
    def inflated(self) -> bool:
        """True once the dict representation has been materialised."""
        return self._dict is not None

    # -- column access -----------------------------------------------------

    def as_arrays(self) -> Tuple[ValueColumn, np.ndarray, np.ndarray]:
        """The (values, lengths, hops) columns in insertion order.

        Zero-copy while un-inflated; rebuilt from the dict afterwards.
        Treat the result as read-only.
        """
        if self._dict is None:
            return self._a_values, self._a_lengths, self._a_hops
        return _columns_from_dict(self._dict, self.width)

    def _exact_index(self) -> Dict[tuple, int]:
        idx = self._index
        if idx is None:
            values, lengths = self._a_values, self._a_lengths
            vlist = (
                values.tolist() if isinstance(values, np.ndarray) else values
            )
            idx = {
                (int(v), int(l)): i
                for i, (v, l) in enumerate(zip(vlist, lengths.tolist()))
            }
            self._index = idx
        return idx

    # -- query overrides (array fast paths; fall back once inflated) -------

    def get(self, prefix: Prefix) -> Optional[NextHop]:
        if self._dict is not None:
            return self._dict.get(prefix)
        i = self._exact_index().get((prefix.value, prefix.length))
        return None if i is None else int(self._a_hops[i])

    def lookup(self, address: int) -> NextHop:
        if self._dict is not None or self.width > 64:
            return super().lookup(address)
        values, lengths = self._a_values, self._a_lengths
        if len(values) == 0:
            return NO_ROUTE
        # Clip the shift to 63 (a 64-bit shift is undefined for numpy
        # ints); length-0 rows match everything and are patched after.
        shifts = np.minimum(
            (self.width - lengths).astype(np.uint64), np.uint64(63)
        )
        addr = np.uint64(address)
        match = (values >> shifts) == (addr >> shifts)
        match |= lengths == 0
        if not bool(match.any()):
            return NO_ROUTE
        cand = np.nonzero(match)[0]
        best = cand[int(np.argmax(lengths[cand]))]
        return int(self._a_hops[best])

    def routes(self) -> Iterator[Tuple[Prefix, NextHop]]:
        if self._dict is not None:
            return iter(self._dict.items())
        return self._iter_routes()

    def _iter_routes(self) -> Iterator[Tuple[Prefix, NextHop]]:
        values, lengths, hops = self._a_values, self._a_lengths, self._a_hops
        width = self.width
        vlist = values.tolist() if isinstance(values, np.ndarray) else values
        for v, l, h in zip(vlist, lengths.tolist(), hops.tolist()):
            yield Prefix(int(v), int(l), width), int(h)

    def prefixes(self) -> List[Prefix]:
        if self._dict is not None:
            return list(self._dict)
        return [p for p, _ in self._iter_routes()]

    def next_hops(self) -> List[NextHop]:
        if self._dict is not None:
            return super().next_hops()
        hops = self._a_hops
        _, first = np.unique(hops, return_index=True)
        return [int(hops[i]) for i in np.sort(first)]

    def has_default_route(self) -> bool:
        if self._dict is not None:
            return super().has_default_route()
        return bool((self._a_lengths == 0).any())

    def length_histogram(self) -> Dict[int, int]:
        if self._dict is not None:
            return super().length_histogram()
        lengths, counts = np.unique(self._a_lengths, return_counts=True)
        # Preserve the dict-backed contract: keys in first-seen order.
        order: Dict[int, int] = {}
        as_of = {int(l): int(c) for l, c in zip(lengths, counts)}
        for l in self._a_lengths.tolist():
            if l not in order:
                order[l] = as_of[l]
        return order

    def copy(self) -> "RoutingTable":
        if self._dict is None:
            return ArrayRoutingTable(
                self._a_values, self._a_lengths, self._a_hops,
                self.width, validate=False,
            )
        return super().copy()

    # -- dunder ------------------------------------------------------------

    def __len__(self) -> int:
        if self._dict is not None:
            return len(self._dict)
        return len(self._a_values)

    def __contains__(self, prefix: Prefix) -> bool:
        if self._dict is not None:
            return prefix in self._dict
        return (prefix.value, prefix.length) in self._exact_index()

    def __iter__(self) -> Iterator[Prefix]:
        if self._dict is not None:
            return iter(self._dict)
        return (p for p, _ in self._iter_routes())

    def __repr__(self) -> str:
        state = "inflated" if self._dict is not None else "columnar"
        return (
            f"ArrayRoutingTable({len(self)} routes, width={self.width}, "
            f"{state})"
        )


def _columns_from_dict(
    routes: Dict[Prefix, NextHop], width: int
) -> Tuple[ValueColumn, np.ndarray, np.ndarray]:
    n = len(routes)
    lengths = np.empty(n, dtype=np.int64)
    hops = np.empty(n, dtype=np.int64)
    if width <= 64:
        values = np.empty(n, dtype=np.uint64)
        for i, (p, h) in enumerate(routes.items()):
            values[i] = p.value
            lengths[i] = p.length
            hops[i] = h
        return values, lengths, hops
    vlist: List[int] = []
    for i, (p, h) in enumerate(routes.items()):
        vlist.append(p.value)
        lengths[i] = p.length
        hops[i] = h
    return vlist, lengths, hops


def table_columns(
    table: RoutingTable,
) -> Tuple[ValueColumn, np.ndarray, np.ndarray]:
    """(values, lengths, hops) columns for any table, array-backed or not."""
    if isinstance(table, ArrayRoutingTable):
        return table.as_arrays()
    return _columns_from_dict(dict(table.routes()), table.width)
