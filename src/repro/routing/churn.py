"""Timestamped route-churn schedules for the cycle simulator.

:func:`generate_updates` produces an *ordered* update stream; this module
assigns it *timestamps* so the simulator can interleave table changes with
packet events at cycle granularity.  Real BGP churn is not uniform: most
updates arrive in short bursts (AS-path flaps re-announcing the same small
set of unstable prefixes), separated by quiet gaps.  The generator models
that directly — burst sizes are geometric with a configurable mean, events
inside a burst are a few µs apart, and burst start times spread over the
horizon so the *mean* rate matches the requested updates/second.

Locality comes from two places: :func:`generate_updates` concentrates the
update content on a small unstable prefix set (``churn_fraction``), and the
bursty timestamps concentrate them in time.  A
:class:`ChurnSchedule` is deterministic for a given seed and validates that
its events are time-ordered and applicable in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .prefix import Prefix
from .table import NextHop, RoutingTable
from .updates import RouteUpdate, UpdateMix, generate_updates

#: 5 ns cycles (the paper's clock): 2×10^8 cycles per simulated second.
CYCLES_PER_SECOND = 200_000_000


@dataclass(frozen=True)
class ChurnEvent:
    """One timestamped table change."""

    cycle: int
    update: RouteUpdate

    @property
    def prefix(self) -> Prefix:
        return self.update.prefix

    @property
    def next_hop(self) -> Optional[NextHop]:
        return self.update.next_hop


class ChurnSchedule:
    """A time-ordered sequence of :class:`ChurnEvent`.

    Build one with :func:`generate_churn`, or script one by hand with the
    chainable builders (mirroring :class:`repro.core.faults.FaultSchedule`)::

        churn = (ChurnSchedule()
                 .announce(10_000, Prefix.from_string("10.0.0.0/8"), 7)
                 .withdraw(40_000, Prefix.from_string("10.1.0.0/16")))

    Events at equal cycles apply in insertion order; the simulator applies
    an event at cycle T before T's packet arrivals.  An empty schedule is
    equivalent to not passing one at all.
    """

    def __init__(
        self, events: Optional[Sequence[ChurnEvent]] = None, seed: int = 0
    ):
        self.seed = seed
        self._events: List[ChurnEvent] = list(events or [])
        for e in self._events:
            if e.cycle < 0:
                raise ValueError(f"event cycle must be non-negative: {e}")

    # -- builders ----------------------------------------------------------

    def announce(
        self, cycle: int, prefix: Prefix, next_hop: NextHop
    ) -> "ChurnSchedule":
        """Announce (insert or next-hop change) at ``cycle``."""
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        self._events.append(ChurnEvent(cycle, RouteUpdate(prefix, next_hop)))
        return self

    def withdraw(self, cycle: int, prefix: Prefix) -> "ChurnSchedule":
        """Withdraw a route at ``cycle``."""
        if cycle < 0:
            raise ValueError("cycle must be non-negative")
        self._events.append(ChurnEvent(cycle, RouteUpdate(prefix, None)))
        return self

    # -- views --------------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events())

    def events(self) -> List[ChurnEvent]:
        """Events sorted by cycle (stable: equal cycles keep insertion
        order, so generated streams stay applicable in order)."""
        return sorted(self._events, key=lambda e: e.cycle)

    def updates(self) -> List[RouteUpdate]:
        """The update contents in schedule order."""
        return [e.update for e in self.events()]

    def mean_rate_per_second(self, horizon_cycles: int) -> float:
        """Mean update rate this schedule realizes over ``horizon_cycles``."""
        if horizon_cycles <= 0:
            return 0.0
        return len(self._events) * CYCLES_PER_SECOND / horizon_cycles

    def validate(self, table: RoutingTable) -> None:
        """Check the schedule applies cleanly, in order, against a copy of
        ``table`` (no withdrawal of an absent prefix, widths match)."""
        present = {p for p in table.prefixes()}
        for e in self.events():
            if e.prefix.width != table.width:
                raise ValueError(
                    f"prefix width {e.prefix.width} != table width "
                    f"{table.width}: {e}"
                )
            if e.next_hop is None:
                if e.prefix not in present:
                    raise ValueError(
                        f"withdrawal of absent prefix at cycle {e.cycle}: "
                        f"{e.prefix}"
                    )
                present.discard(e.prefix)
            else:
                present.add(e.prefix)

    def __repr__(self) -> str:
        return (
            f"ChurnSchedule({len(self._events)} events, seed={self.seed})"
        )


def generate_churn(
    table: RoutingTable,
    rate_per_s: float,
    horizon_cycles: int,
    seed: int = 0,
    mix: Optional[UpdateMix] = None,
    churn_fraction: float = 0.05,
    burst_mean: float = 6.0,
    intra_burst_gap_cycles: int = 400,
    next_hop_count: int = 16,
) -> ChurnSchedule:
    """A seeded, bursty churn schedule averaging ``rate_per_s`` updates/s
    over ``horizon_cycles``.

    Update *contents* come from :func:`generate_updates` (always applicable
    in order; churn-skewed per ``churn_fraction``).  *Timestamps* are bursty:
    burst sizes are geometric with mean ``burst_mean``, events inside a
    burst are ``intra_burst_gap_cycles`` apart (2 µs at the default — a BGP
    speaker re-announcing a flapping path), and burst starts are uniform
    over the horizon.  ``rate_per_s=0`` yields an empty schedule.
    """
    if rate_per_s < 0:
        raise ValueError(f"rate_per_s must be non-negative, got {rate_per_s}")
    if horizon_cycles <= 0:
        raise ValueError(
            f"horizon_cycles must be positive, got {horizon_cycles}"
        )
    if burst_mean < 1.0:
        raise ValueError(f"burst_mean must be >= 1, got {burst_mean}")
    if intra_burst_gap_cycles < 1:
        raise ValueError("intra_burst_gap_cycles must be positive")
    n_events = int(round(rate_per_s * horizon_cycles / CYCLES_PER_SECOND))
    if n_events == 0:
        return ChurnSchedule(seed=seed)
    rng = np.random.default_rng(seed)
    sizes: List[int] = []
    remaining = n_events
    while remaining > 0:
        size = int(rng.geometric(1.0 / burst_mean))
        size = min(size, remaining)
        sizes.append(size)
        remaining -= size
    starts = np.sort(rng.integers(0, horizon_cycles, size=len(sizes)))
    cycles: List[int] = []
    for start, size in zip(starts, sizes):
        for i in range(size):
            cycles.append(int(start) + i * intra_burst_gap_cycles)
    # Assign contents to time-sorted slots so the always-applicable update
    # order is preserved on the simulator's clock.
    cycles.sort()
    updates = generate_updates(
        table,
        n_events,
        seed=seed,
        mix=mix,
        churn_fraction=churn_fraction,
        next_hop_count=next_hop_count,
    )
    events = [
        ChurnEvent(cycle, update) for cycle, update in zip(cycles, updates)
    ]
    return ChurnSchedule(events, seed=seed)
