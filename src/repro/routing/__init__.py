"""Routing-table substrate: prefixes, tables, synthetic BGP generators."""

from .prefix import IPV4_WIDTH, IPV6_WIDTH, WILDCARD, Prefix, format_ipv4, parse_ipv4
from .table import NO_ROUTE, NextHop, RoutingTable
from .arraytable import ArrayRoutingTable, table_columns
from .synthetic import (
    FULL_V4_PROFILE,
    FULL_V4_SIZE,
    RT1_PROFILE,
    RT1_SIZE,
    RT2_PROFILE,
    RT2_SIZE,
    TableProfile,
    addresses_matching,
    generate_table,
    make_full_v4,
    make_rt1,
    make_rt2,
    random_small_table,
)
from .ipv6 import (
    FULL_V6_SIZE,
    IPV6_TIERS,
    SHIP_2026_TIERS,
    ipv6_addresses_matching,
    make_full_v6,
    make_ipv6_table,
)
from .aggregate import aggregate_table, aggregation_ratio
from .minimize import (
    PASS_SETS,
    MinimizeState,
    MinimizeStats,
    minimization_ratio,
    minimize_table,
    ordered_covering,
    ortc_table,
    remove_default_routes,
)
from .updates import RouteUpdate, UpdateMix, generate_updates
from .churn import ChurnEvent, ChurnSchedule, generate_churn
from . import distributions, textio

__all__ = [
    "IPV4_WIDTH",
    "IPV6_WIDTH",
    "WILDCARD",
    "Prefix",
    "format_ipv4",
    "parse_ipv4",
    "NO_ROUTE",
    "NextHop",
    "RoutingTable",
    "ArrayRoutingTable",
    "table_columns",
    "TableProfile",
    "RT1_PROFILE",
    "RT2_PROFILE",
    "RT1_SIZE",
    "RT2_SIZE",
    "FULL_V4_PROFILE",
    "FULL_V4_SIZE",
    "generate_table",
    "make_rt1",
    "make_rt2",
    "make_full_v4",
    "random_small_table",
    "addresses_matching",
    "IPV6_TIERS",
    "SHIP_2026_TIERS",
    "FULL_V6_SIZE",
    "make_ipv6_table",
    "make_full_v6",
    "ipv6_addresses_matching",
    "RouteUpdate",
    "UpdateMix",
    "generate_updates",
    "ChurnEvent",
    "ChurnSchedule",
    "generate_churn",
    "aggregate_table",
    "aggregation_ratio",
    "PASS_SETS",
    "MinimizeState",
    "MinimizeStats",
    "minimization_ratio",
    "minimize_table",
    "ordered_covering",
    "ortc_table",
    "remove_default_routes",
    "distributions",
    "textio",
]
