"""Property-based tests (hypothesis) for the SPAL core: LR-cache invariants
and the partition-preserving-LPM theorem."""

from hypothesis import given, settings, strategies as st

from repro.core import LOC, REM, LRCache, partition_table
from repro.routing import Prefix, RoutingTable


# ---------------------------------------------------------------------------
# LR-cache invariants under arbitrary operation sequences
# ---------------------------------------------------------------------------

ops = st.lists(
    st.tuples(
        st.sampled_from(["probe", "alloc", "insert", "flush"]),
        st.integers(0, 63),          # address
        st.sampled_from([LOC, REM]),
    ),
    min_size=1,
    max_size=200,
)


def drive(cache: LRCache, sequence) -> None:
    pending = []
    for op, addr, mix in sequence:
        if op == "probe":
            cache.probe(addr)
        elif op == "alloc":
            entry = cache.allocate(addr, mix)
            if entry is not None:
                pending.append(entry)
                # Fill every other allocation, leaving some waiting.
                if len(pending) % 2 == 0:
                    cache.fill(entry, addr % 8)
        elif op == "insert":
            cache.insert_complete(addr, addr % 8, mix)
        else:
            cache.flush()
            pending.clear()


class TestCacheInvariants:
    @given(ops, st.sampled_from([8, 16, 32]), st.sampled_from([0.0, 0.25, 0.5, 1.0]))
    @settings(max_examples=150, deadline=None)
    def test_capacity_never_exceeded(self, sequence, blocks, mix):
        cache = LRCache(n_blocks=blocks, associativity=4, mix=mix, victim_blocks=4)
        drive(cache, sequence)
        assert cache.occupancy() <= cache.n_blocks
        for s in cache._sets:
            assert len(s) <= cache.associativity

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_entries_are_where_they_hash(self, sequence):
        cache = LRCache(n_blocks=16, associativity=4, victim_blocks=0)
        drive(cache, sequence)
        for set_index, s in enumerate(cache._sets):
            for addr, entry in s.items():
                assert addr % cache.n_sets == set_index
                assert entry.address == addr

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_stats_balance(self, sequence):
        cache = LRCache(n_blocks=16, associativity=4, victim_blocks=4)
        drive(cache, sequence)
        s = cache.stats
        assert s.hits + s.waiting_hits + s.victim_hits + s.misses == s.lookups
        assert 0.0 <= s.hit_rate <= 1.0

    @given(ops)
    @settings(max_examples=100, deadline=None)
    def test_waiting_entries_survive_inserts(self, sequence):
        """Allocated-but-unfilled entries are never evicted by later traffic
        (flushes excepted)."""
        cache = LRCache(n_blocks=8, associativity=4, victim_blocks=0)
        entry = cache.allocate(0, LOC)
        assert entry is not None
        flushed = any(op == "flush" for op, _, _ in sequence)
        drive(cache, sequence)
        if not flushed and entry.waiting:
            # While W=1 the reservation is pinned: later traffic can
            # neither evict nor replace it.  (Once filled — the driver's
            # dedup path fills every other allocation — it becomes an
            # ordinary complete entry and is fair game for eviction.)
            assert cache._sets[0].get(0) is entry

    @given(ops, st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]))
    @settings(max_examples=100, deadline=None)
    def test_mix_targets_respected_at_steady_state(self, sequence, mix):
        """No set ends up with more REM entries than its target once it has
        seen eviction pressure (full set + a completed insert of each
        class)."""
        cache = LRCache(n_blocks=8, associativity=4, mix=mix, victim_blocks=0)
        drive(cache, sequence)
        # Apply deterministic pressure: fill one set beyond capacity.
        for addr in range(0, 16, 2):
            cache.insert_complete(addr, 1, LOC)
        for addr in range(16, 20, 2):
            cache.insert_complete(addr, 1, REM)
        s = cache._sets[0]
        n_rem = sum(1 for e in s.values() if e.mix == REM and not e.waiting)
        waiting = sum(1 for e in s.values() if e.waiting)
        # Waiting entries are un-evictable and may hold REM slots hostage.
        assert n_rem <= cache.rem_target + waiting


# ---------------------------------------------------------------------------
# Partitioning: LPM preservation for arbitrary tables and ψ
# ---------------------------------------------------------------------------

@st.composite
def prefix_tables(draw):
    routes = draw(
        st.lists(
            st.tuples(st.integers(0, (1 << 32) - 1), st.integers(0, 32),
                      st.integers(0, 15)),
            min_size=1,
            max_size=30,
        )
    )
    table = RoutingTable()
    for value, length, hop in routes:
        mask = ((1 << length) - 1) << (32 - length) if length else 0
        table.update(Prefix(value & mask, length), hop)
    return table


class TestPartitionTheorem:
    @given(
        prefix_tables(),
        st.integers(1, 9),
        st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=25),
    )
    @settings(max_examples=120, deadline=None)
    def test_lpm_preserved(self, table, psi, addresses):
        plan = partition_table(table, psi)
        for addr in addresses:
            home = plan.home_lc(addr)
            assert plan.tables[home].lookup(addr) == table.lookup(addr)

    @given(prefix_tables(), st.integers(1, 9))
    @settings(max_examples=100, deadline=None)
    def test_every_lc_has_a_table(self, table, psi):
        plan = partition_table(table, psi)
        assert len(plan.tables) == psi
        assert len(plan.lc_of_pattern) == 1 << len(plan.bits)
        assert set(plan.lc_of_pattern) == set(range(psi))

    @given(prefix_tables(), st.integers(2, 8))
    @settings(max_examples=80, deadline=None)
    def test_replication_bounded_by_pattern_count(self, table, psi):
        plan = partition_table(table, psi)
        total = sum(plan.partition_sizes())
        assert len(table) <= total <= len(table) * (1 << len(plan.bits))
