"""Tests for the synthetic BGP table generators (RT_1 / RT_2 stand-ins)."""

import numpy as np
import pytest

from repro.routing import (
    Prefix,
    RoutingTable,
    addresses_matching,
    distributions,
    generate_table,
    make_rt1,
    make_rt2,
    random_small_table,
)
from repro.routing.synthetic import RT1_PROFILE, RT2_PROFILE, TableProfile


@pytest.fixture(scope="module")
def rt1_small():
    return make_rt1(size=4000)


class TestDistributions:
    def test_normalize(self):
        norm = distributions.normalize({8: 2.0, 24: 6.0})
        assert norm[8] == pytest.approx(0.25)
        assert norm[24] == pytest.approx(0.75)

    def test_normalize_rejects_zero(self):
        with pytest.raises(ValueError):
            distributions.normalize({8: 0.0})

    def test_backbone_shape_matches_paper_claims(self):
        # >83% of prefixes no longer than 24 bits (paper Sec. 3.1).
        assert distributions.share_at_most(distributions.BACKBONE_2003, 24) > 0.83
        # /24 around half of all prefixes (paper Sec. 2.3).
        norm = distributions.normalize(distributions.BACKBONE_2003)
        assert 0.45 < norm[24] < 0.60
        # A non-empty /32 tail (paper Sec. 2.2).
        assert norm[32] > 0.0

    def test_sample_lengths_range(self):
        rng = np.random.default_rng(0)
        lengths = distributions.sample_lengths(
            distributions.BACKBONE_2003, 1000, rng
        )
        assert lengths.min() >= 8
        assert lengths.max() <= 32


class TestGenerators:
    def test_exact_size(self, rt1_small):
        # size + default route
        assert len(rt1_small) == 4001

    def test_deterministic(self):
        a = make_rt1(seed=7, size=500)
        b = make_rt1(seed=7, size=500)
        assert sorted(a.routes()) == sorted(b.routes())

    def test_seed_changes_table(self):
        a = make_rt1(seed=7, size=500)
        b = make_rt1(seed=8, size=500)
        assert sorted(a.routes()) != sorted(b.routes())

    def test_default_route_present(self, rt1_small):
        assert rt1_small.has_default_route()

    def test_length_histogram_roughly_matches(self):
        table = make_rt2(size=20000)
        hist = table.length_histogram()
        total = sum(hist.values())
        # /24 should dominate.
        assert hist.get(24, 0) / total > 0.35
        # >80% at length <= 24.
        le24 = sum(c for l, c in hist.items() if l <= 24)
        assert le24 / total > 0.80

    def test_has_nested_exceptions(self, rt1_small):
        # A realistic table contains prefixes nested inside others.
        prefixes = sorted(rt1_small.prefixes())
        nested = 0
        for a, b in zip(prefixes, prefixes[1:]):
            if a.length and a.contains(b):
                nested += 1
        assert nested > 50

    def test_default_profiles_sizes(self):
        assert RT1_PROFILE.size == 41_709
        assert RT2_PROFILE.size == 140_838

    def test_custom_profile(self):
        profile = TableProfile(
            size=100,
            length_histogram={16: 1.0},
            exception_fraction=0.0,
            include_default=False,
        )
        table = generate_table(profile, seed=3)
        assert len(table) == 100
        assert all(p.length == 16 for p in table)


class TestRandomSmallTable:
    def test_size_and_default(self):
        table = random_small_table(50, seed=1)
        assert len(table) == 51
        assert table.has_default_route()

    def test_no_default(self):
        table = random_small_table(10, seed=1, include_default=False)
        assert len(table) == 10
        assert not table.has_default_route()

    def test_max_length_respected(self):
        table = random_small_table(30, seed=2, max_length=12)
        assert max(p.length for p in table.prefixes() if p.length) <= 12


class TestAddressesMatching:
    def test_all_addresses_covered(self):
        table = random_small_table(40, seed=3, include_default=False)
        addrs = addresses_matching(table, 200, seed=4)
        for a in addrs:
            assert table.lookup_prefix(int(a)) is not None

    def test_deterministic(self):
        table = random_small_table(10, seed=3)
        a = addresses_matching(table, 50, seed=9)
        b = addresses_matching(table, 50, seed=9)
        assert (a == b).all()
