"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis import bar_chart, line_chart


class TestBarChart:
    def test_basic(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].strip().startswith("a |")
        assert "2" in lines[1]

    def test_longer_bar_for_larger_value(self):
        out = bar_chart(["x", "y"], [1.0, 10.0], width=20)
        x_line, y_line = out.splitlines()
        assert y_line.count("#") > x_line.count("#")

    def test_log_scale_compresses(self):
        lin = bar_chart(["x", "y"], [1.0, 1000.0], width=40)
        log = bar_chart(["x", "y"], [1.0, 1000.0], width=40, log=True)
        lin_ratio = lin.splitlines()[1].count("#") / lin.splitlines()[0].count("#")
        log_lines = log.splitlines()
        log_ratio = log_lines[1].count("#") / log_lines[0].count("#")
        assert log_ratio < lin_ratio
        assert "(log scale)" in log

    def test_zero_value_empty_bar(self):
        out = bar_chart(["z"], [0.0], width=10)
        assert "#" not in out

    def test_title_and_unit(self):
        out = bar_chart(["a"], [5.0], title="T", unit=" KB")
        assert out.splitlines()[0] == "T"
        assert "5 KB" in out

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty(self):
        assert bar_chart([], [], title="T") == "T"


class TestLineChart:
    def test_series_glyphs_present(self):
        out = line_chart([1, 2, 3], {"s1": [1, 2, 3], "s2": [3, 2, 1]})
        assert "*" in out and "o" in out
        assert "*=s1" in out and "o=s2" in out

    def test_axis_bounds(self):
        out = line_chart([1, 2], {"s": [5.0, 15.0]})
        assert "15.0" in out and "5.0" in out

    def test_monotone_series_renders_monotone(self):
        out = line_chart([1, 2, 3], {"s": [1.0, 2.0, 3.0]}, height=3, width=9)
        rows = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        # Highest value in the top row, lowest in the bottom row.
        assert "*" in rows[0] and "*" in rows[-1]
        assert rows[0].index("*") > rows[-1].index("*")

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"s": [1.0]})

    def test_none_values_skipped(self):
        out = line_chart([1, 2], {"s": [None, 2.0]})
        grid = "".join(l for l in out.splitlines() if "|" in l)
        assert grid.count("*") == 1

    def test_single_point(self):
        out = line_chart([7], {"s": [3.0]})
        assert "*" in out

    def test_empty_series(self):
        assert line_chart([1], {}, title="T") == "T"


class TestFigureIntegration:
    @pytest.mark.slow
    def test_fig3_includes_charts(self):
        from repro.experiments import run_fig3

        result = run_fig3()
        assert "(log scale)" in result.rendered
        assert "(chart: psi=4, RT_1)" in result.rendered

    def test_line_figures_include_charts(self):
        from repro.experiments import run_fig4

        result = run_fig4(packets_per_lc=1200, traces=["D_75"])
        assert "(chart: mean lookup cycles)" in result.rendered
        assert "*=D_75" in result.rendered
