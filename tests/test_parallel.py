"""Tests for the process-parallel sweep driver."""

import warnings

import pytest

from repro.experiments.parallel import run_spal_grid, workers_from_env


def _grid():
    return [
        dict(trace="D_75", n_lcs=2, cache_blocks=512, packets_per_lc=1200),
        dict(trace="D_75", n_lcs=4, cache_blocks=512, packets_per_lc=1200),
    ]


class TestWorkersFromEnv:
    def test_default_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert workers_from_env() == 1

    def test_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert workers_from_env() == 4

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS='many'"):
            assert workers_from_env() == 1

    def test_valid_value_does_not_warn(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert workers_from_env() == 2

    def test_floor_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert workers_from_env() == 1


class TestGridRunner:
    def test_sequential_order(self):
        results = run_spal_grid(_grid(), workers=1)
        assert [r.n_lcs for r in results] == [2, 4]
        assert all(r.packets > 0 for r in results)

    def test_parallel_matches_sequential(self):
        """Determinism: worker count must not change any result."""
        seq = run_spal_grid(_grid(), workers=1)
        par = run_spal_grid(_grid(), workers=2)
        for a, b in zip(seq, par):
            assert a.mean_lookup_cycles == b.mean_lookup_cycles
            assert a.fabric_messages == b.fabric_messages

    def test_empty_grid(self):
        assert run_spal_grid([], workers=2) == []
