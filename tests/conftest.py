"""Shared fixtures and helpers for the tier-1 suite.

Three things live here:

* **session-scoped inputs** — routing tables (and a partition plan) that
  many modules previously rebuilt per-module or per-test.  Table
  generation walks the synthetic prefix profiles and is the dominant
  fixed cost of several modules; building each flavour once per session
  keeps the suite fast without changing any test's inputs.
* **fast-path toggling** — one parametrized helper for the
  ``REPRO_BATCH`` bit-identity checks that used to be copy-pasted across
  ``test_churn``/``test_faults``/``test_properties_sim``.
* **hypothesis profiles** — a capped ``ci-smoke`` profile so the CI
  engine-identity job bounds its example budget (select it with
  ``HYPOTHESIS_PROFILE=ci-smoke``).
"""

from __future__ import annotations

import os
import subprocess
import sys
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import settings

from repro.routing import random_small_table

# -- hypothesis profiles ----------------------------------------------------

settings.register_profile("ci-smoke", max_examples=8, deadline=None)
settings.register_profile("thorough", max_examples=200, deadline=None)
_profile = os.environ.get("HYPOTHESIS_PROFILE")
if _profile:
    settings.load_profile(_profile)


# -- session-scoped tables --------------------------------------------------
# Deterministic (fixed seeds) and treated as read-only by consumers; a
# test that needs to mutate a table must copy it (or build its own).


@pytest.fixture(scope="session")
def ipv4_table():
    """A mid-size IPv4 table shared by simulator-level suites."""
    return random_small_table(300, seed=33)


@pytest.fixture(scope="session")
def ipv6_table():
    """An IPv6 (width-128) table: exercises the scalar trie fallbacks."""
    return random_small_table(
        120, seed=17, max_length=48, width=128
    )


# -- result digests ---------------------------------------------------------


def result_digest(r) -> dict:
    """Every ``SimulationResult`` field as plain JSON-able values.

    Used by the engine-identity differential suite (field-by-field
    scalar/array comparison) and the golden-snapshot tests (replay and
    diff against a pinned JSON file) — any new result field must be
    added here to stay covered by both.
    """
    return {
        "name": r.name,
        "n_lcs": r.n_lcs,
        "latencies": np.asarray(r.latencies).tolist(),
        "horizon_cycles": int(r.horizon_cycles),
        "cache_stats": r.cache_stats,
        "fe_lookups": list(r.fe_lookups),
        "fe_utilization": list(r.fe_utilization),
        "fabric_messages": r.fabric_messages,
        "flushes": r.flushes,
        "extra": r.extra,
        "drops": r.drops,
        "retries": r.retries,
        "fabric_dropped_messages": r.fabric_dropped_messages,
        "fault_events": r.fault_events,
        "lc_availability": list(r.lc_availability),
        "failover_packets": r.failover_packets,
        "failover_mean_cycles": r.failover_mean_cycles,
        "update_events_applied": r.update_events_applied,
        "update_patches": r.update_patches,
        "update_rebuilds": r.update_rebuilds,
        "update_service_cycles": r.update_service_cycles,
        "invalidation_messages": r.invalidation_messages,
        "invalidation_entries_dropped": r.invalidation_entries_dropped,
        "churn_misses": r.churn_misses,
        "metrics_snapshot": r.metrics_snapshot,
        "timeseries": (
            r.timeseries.digest() if r.timeseries is not None else None
        ),
    }


# -- REPRO_BATCH fast-path helpers ------------------------------------------


@contextmanager
def fast_path(enabled: bool):
    """Temporarily pin the process-wide batch fast path on or off."""
    old = os.environ.get("REPRO_BATCH")
    os.environ["REPRO_BATCH"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_BATCH", None)
        else:
            os.environ["REPRO_BATCH"] = old


def assert_fast_path_bit_identical(run=None, *, subprocess_code=None):
    """Assert a scenario is bit-identical with the fast paths on and off.

    Exactly one mode:

    * ``run`` — a zero-arg callable returning a ``SimulationResult``;
      it is invoked under ``REPRO_BATCH=1`` and ``REPRO_BATCH=0`` and
      the results are compared field-by-field (latency bytes, horizon,
      summary, metrics snapshot).
    * ``subprocess_code`` — a snippet printing a result digest; it runs
      in two fresh interpreters so the toggle is seen at *import* time
      (kernel compilation happens on module import), and the outputs
      must match byte-for-byte.
    """
    if (run is None) == (subprocess_code is None):
        raise ValueError("pass exactly one of run= or subprocess_code=")
    if subprocess_code is not None:
        outs = []
        for batch in ("1", "0"):
            env = dict(os.environ, REPRO_BATCH=batch)
            env["PYTHONPATH"] = os.pathsep.join(sys.path)
            proc = subprocess.run(
                [sys.executable, "-c", subprocess_code],
                capture_output=True, text=True, env=env, check=True,
            )
            outs.append(proc.stdout)
        assert outs[0] == outs[1], (
            f"fast-path on/off outputs differ:\n{outs[0]}\nvs\n{outs[1]}"
        )
        return outs[0]
    with fast_path(True):
        on = run()
    with fast_path(False):
        off = run()
    assert np.array_equal(on.latencies, off.latencies)
    assert on.horizon_cycles == off.horizon_cycles
    assert on.summary() == off.summary()
    assert on.metrics_snapshot == off.metrics_snapshot
    return on, off


@pytest.fixture(scope="session")
def fast_path_toggle():
    """The :func:`fast_path` context manager, as a session fixture (usable
    from ``@given`` tests, where function-scoped fixtures are barred)."""
    return fast_path


@pytest.fixture(scope="session")
def fast_path_bit_identity():
    """The :func:`assert_fast_path_bit_identical` helper as a fixture."""
    return assert_fast_path_bit_identical
