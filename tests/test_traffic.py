"""Tests for the traffic substrate: packets, streams, profiles, locality."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.routing import random_small_table
from repro.traffic import (
    PAPER_TRACES,
    FlowPopulation,
    LinkSpec,
    TraceSpec,
    all_trace_specs,
    arrival_times,
    generate_router_streams,
    generate_stream,
    locality,
    packet_sizes,
    trace_spec,
)


@pytest.fixture(scope="module")
def table():
    return random_small_table(200, seed=50)


class TestPackets:
    def test_windows_match_paper(self):
        assert LinkSpec(40).window == (2, 18)
        assert LinkSpec(10).window == (6, 74)

    def test_offered_load(self):
        # 40 Gbps / 256B mean packets ~ 19.5 Mpps; window mean 10 cycles
        # (50 ns) -> 20 Mpps.
        assert LinkSpec(40).offered_mpps == pytest.approx(20.0)
        assert LinkSpec(10).offered_mpps == pytest.approx(5.0)

    def test_unsupported_speed(self):
        with pytest.raises(SimulationError):
            LinkSpec(100).window

    def test_arrival_times_monotone_and_windowed(self):
        times = arrival_times(1000, speed_gbps=40, seed=1)
        gaps = np.diff(times)
        assert gaps.min() >= 2 and gaps.max() <= 18
        assert (gaps > 0).all()

    def test_arrival_times_deterministic(self):
        assert (arrival_times(100, seed=3) == arrival_times(100, seed=3)).all()

    def test_negative_count_raises(self):
        with pytest.raises(SimulationError):
            arrival_times(-1)

    def test_packet_sizes_bounds_and_mean(self):
        sizes = packet_sizes(20000, seed=2)
        assert sizes.min() >= 40
        assert sizes.max() <= 1500
        assert 200 < sizes.mean() < 300


class TestFlowPopulation:
    def test_unique_addresses(self, table):
        spec = TraceSpec("t", n_flows=500, seed=1)
        pop = FlowPopulation(spec, table)
        assert len(set(int(a) for a in pop.addresses)) == 500

    def test_addresses_covered_by_table(self, table):
        spec = TraceSpec("t", n_flows=200, seed=2)
        pop = FlowPopulation(spec, table)
        for a in pop.addresses[:50]:
            assert table.lookup_prefix(int(a)) is not None

    def test_heavy_tail(self, table):
        spec = TraceSpec("t", n_flows=5000, zipf_alpha=1.25, seed=3)
        pop = FlowPopulation(spec, table)
        # A small share of flows carries most probability mass.
        assert pop.share_of_top_flows(0.09) > 0.6

    def test_scaled_spec(self):
        spec = TraceSpec("t", n_flows=96_000)
        # 1/10 of the paper's 4.8M packets -> 1/10 of the flows.
        small = spec.scaled(480_000)
        assert small.n_flows == 9600
        assert small.name == spec.name
        # A tiny run hits the floor; a paper-size run is a no-op.
        assert spec.scaled(1000).n_flows == 256
        assert spec.scaled(10_000_000) is spec


class TestStreams:
    def test_length_and_determinism(self, table):
        spec = TraceSpec("t", n_flows=300, seed=4)
        pop = FlowPopulation(spec, table)
        a = generate_stream(pop, 1000, lc_index=0)
        b = generate_stream(pop, 1000, lc_index=0)
        assert (a == b).all()
        assert len(a) == 1000

    def test_lcs_differ_but_share_flows(self, table):
        spec = TraceSpec("t", n_flows=300, seed=5)
        pop = FlowPopulation(spec, table)
        s0 = generate_stream(pop, 2000, lc_index=0)
        s1 = generate_stream(pop, 2000, lc_index=1)
        assert not (s0 == s1).all()
        # Popular destinations appear at both LCs (the sharing SPAL exploits).
        shared = set(int(a) for a in s0) & set(int(a) for a in s1)
        assert len(shared) > 50

    def test_recency_increases_short_range_reuse(self, table):
        base = TraceSpec("t", n_flows=5000, zipf_alpha=1.0, recency=0.0, seed=6)
        boosted = TraceSpec("t", n_flows=5000, zipf_alpha=1.0, recency=0.4, seed=6)
        pop_a = FlowPopulation(base, table)
        pop_b = FlowPopulation(boosted, table)
        sa = generate_stream(pop_a, 5000)
        sb = generate_stream(pop_b, 5000)
        ha = locality.reuse_distance_histogram(sa, [64])["<=64"]
        hb = locality.reuse_distance_histogram(sb, [64])["<=64"]
        assert hb > ha

    def test_zero_packets(self, table):
        spec = TraceSpec("t", n_flows=100, seed=7)
        pop = FlowPopulation(spec, table)
        assert len(generate_stream(pop, 0)) == 0

    def test_router_streams(self, table):
        spec = TraceSpec("t", n_flows=100, seed=8)
        pop = FlowPopulation(spec, table)
        streams = generate_router_streams(pop, 4, 100)
        assert len(streams) == 4
        assert all(len(s) == 100 for s in streams)


class TestProfiles:
    def test_all_five_paper_traces(self):
        assert PAPER_TRACES == ["D_75", "D_81", "L_92-0", "L_92-1", "B_L"]
        for name in PAPER_TRACES:
            assert trace_spec(name).name == name

    def test_unknown_trace(self):
        with pytest.raises(KeyError):
            trace_spec("nope")

    def test_worldcup_more_local_than_abilene(self, table):
        """The profile ordering that separates the figures' series."""
        n = 6000
        rates = {}
        for name in ("D_75", "L_92-1"):
            spec = trace_spec(name).scaled(n)
            pop = FlowPopulation(spec, table)
            stream = generate_stream(pop, n)
            rates[name] = locality.lru_hit_rate(stream, 512)
        assert rates["D_75"] > rates["L_92-1"]

    def test_hit_rates_support_paper_operating_point(self, table):
        """At 4K blocks the paper cites hit rates above ~0.9; check the
        ideal-LRU upper bound clears that for every profile at scale."""
        n = 20000
        for name, spec in all_trace_specs().items():
            pop = FlowPopulation(spec.scaled(n), table)
            stream = generate_stream(pop, n)
            assert locality.lru_hit_rate(stream, 4096) > 0.85, name


class TestLocalityMetrics:
    def test_unique_fraction(self):
        assert locality.unique_fraction([1, 1, 2, 2]) == 0.5
        assert locality.unique_fraction([]) == 0.0

    def test_working_set(self):
        stream = [1, 2, 1, 2, 3, 3, 3, 3]
        assert locality.working_set_size(stream, 4) == pytest.approx(1.5)

    def test_lru_hit_rate_simple(self):
        # Capacity 1: hits only on immediate repeats.
        assert locality.lru_hit_rate([1, 1, 2, 2, 1], 1) == pytest.approx(0.4)
        # Large capacity: everything after first occurrence hits.
        assert locality.lru_hit_rate([1, 1, 2, 2, 1], 10) == pytest.approx(0.6)

    def test_top_flow_share(self):
        stream = [1] * 90 + list(range(2, 12))
        assert locality.top_flow_share(stream, 0.1) == pytest.approx(0.9)

    def test_reuse_histogram_sums_to_one(self):
        stream = [1, 2, 1, 3, 1, 2]
        hist = locality.reuse_distance_histogram(stream, [1, 4])
        assert sum(hist.values()) == pytest.approx(1.0)
