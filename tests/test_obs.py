"""The repro.obs subsystem: registry, tracer, timeline export, profiling."""

import json

import numpy as np
import pytest

from repro.analysis.metrics import degraded_mode_summary, drop_rate
from repro.core import CacheConfig, SpalConfig, SpalRouter
from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_CYCLE_BUCKETS,
    EVENT_NAMES,
    KernelProfile,
    MetricsRegistry,
    Tracer,
    chrome_trace,
    exponential_buckets,
    export_chrome_trace,
    export_jsonl,
    load_jsonl,
    profile_matcher,
    render_metric_name,
    validate_chrome_trace,
)
from repro.obs.timeline import PID_FABRIC, PID_LINE_CARDS
from repro.routing import random_small_table
from repro.sim import SpalSimulator
from repro.sim.results import SimulationResult
from repro.tries.lulea import LuleaTrie


@pytest.fixture(scope="module")
def table():
    return random_small_table(80, seed=7, max_length=16)


def small_streams(n_lcs, n=300, seed=3):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, 1 << 16, size=n).astype(np.uint64)
        for _ in range(n_lcs)
    ]


def traced_run(table, n_lcs=2, trace=None, registry=None):
    sim = SpalSimulator(
        table,
        SpalConfig(n_lcs=n_lcs, cache=CacheConfig(n_blocks=64)),
        registry=registry,
        trace=trace,
    )
    result = sim.run(small_streams(n_lcs), name="obs")
    return sim, result


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_bind_is_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("sim.drops", reason="crash")
        b = reg.counter("sim.drops", reason="crash")
        assert a is b
        assert len(reg) == 1

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        a = reg.counter("cache.lr.evictions", kind="REM", lc=3)
        b = reg.counter("cache.lr.evictions", lc=3, kind="REM")
        assert a is b
        assert render_metric_name(a.name, a.labels) == (
            "cache.lr.evictions{kind=REM,lc=3}"
        )

    def test_distinct_labels_are_distinct_instruments(self):
        reg = MetricsRegistry()
        loc = reg.counter("cache.lr.evictions", kind="LOC")
        rem = reg.counter("cache.lr.evictions", kind="REM")
        assert loc is not rem
        loc.value += 2
        assert rem.value == 0

    def test_label_values_are_stringified(self):
        reg = MetricsRegistry()
        c = reg.counter("fe.lookups", lc=3)
        assert c.labels == {"lc": "3"}
        assert reg.counter("fe.lookups", lc="3") is c

    @pytest.mark.parametrize(
        "bad", ["", "Sim.drops", "1sim", "sim..drops", "sim.drops!", "sim-x"]
    )
    def test_bad_metric_names_rejected(self, bad):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter(bad)

    def test_bad_label_key_rejected(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("sim.drops", **{"Bad": 1})

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("sim.retries")
        with pytest.raises(ObservabilityError):
            reg.gauge("sim.retries")
        with pytest.raises(ObservabilityError):
            reg.histogram("sim.retries")

    def test_histogram_edge_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("sim.rem.round_trip_cycles", buckets=(10, 20))
        assert reg.histogram("sim.rem.round_trip_cycles", buckets=(10, 20))
        with pytest.raises(ObservabilityError):
            reg.histogram("sim.rem.round_trip_cycles", buckets=(10, 30))

    def test_snapshot_is_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("z.last").value = 3
        reg.gauge("a.first").set(1.5)
        reg.histogram("m.mid").observe(9)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap["z.last"] == 3
        assert snap["a.first"] == 1.5
        assert snap["m.mid"]["count"] == 1

    def test_get_by_rendered_name(self):
        reg = MetricsRegistry()
        c = reg.counter("fabric.msgs", kind="dropped")
        assert reg.get("fabric.msgs{kind=dropped}") is c
        assert reg.get("fabric.msgs{kind=sent}") is None

    def test_top_orders_by_heat(self):
        reg = MetricsRegistry()
        reg.counter("a.cold").value = 1
        reg.counter("b.hot").value = 100
        h = reg.histogram("c.hist")
        for _ in range(10):
            h.observe(1)
        assert [name for name, _ in reg.top(2)] == ["b.hot", "c.hist"]

    def test_reset_keeps_bound_references_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("sim.retries")
        c.value = 7
        reg.reset()
        assert c.value == 0
        assert reg.counter("sim.retries") is c


class TestHistogram:
    def test_exact_edge_lands_in_its_bucket(self):
        """le (less-or-equal) semantics: v == edge belongs to that edge's
        bucket, v == edge + 1 to the next."""
        reg = MetricsRegistry()
        h = reg.histogram("t.h", buckets=(8, 16, 32))
        h.observe(8)
        h.observe(9)
        h.observe(16)
        h.observe(33)
        buckets = h.snapshot_value()["buckets"]
        assert buckets == {"le_8": 1, "le_16": 2, "le_32": 0, "inf": 1}

    def test_below_first_edge_lands_in_first_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.h", buckets=(8, 16))
        h.observe(0)
        assert h.counts[0] == 1

    def test_mean_and_count(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.h", buckets=(10,))
        for v in (2, 4, 6):
            h.observe(v)
        assert h.total == 3
        assert h.mean == pytest.approx(4.0)

    def test_percentile_upper_edge_estimate(self):
        reg = MetricsRegistry()
        h = reg.histogram("t.h", buckets=(8, 16, 32))
        for v in (1, 2, 3, 20):
            h.observe(v)
        assert h.percentile(50) == 8.0
        assert h.percentile(100) == 32.0
        h.observe(1000)
        assert h.percentile(100) == float("inf")
        with pytest.raises(ObservabilityError):
            h.percentile(101)

    def test_bad_bucket_specs_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ObservabilityError):
            reg.histogram("t.empty", buckets=())
        with pytest.raises(ObservabilityError):
            reg.histogram("t.unsorted", buckets=(10, 10))

    def test_exponential_buckets(self):
        assert exponential_buckets(2, 2, 4) == (2.0, 4.0, 8.0, 16.0)
        with pytest.raises(ObservabilityError):
            exponential_buckets(0, 2, 4)
        with pytest.raises(ObservabilityError):
            exponential_buckets(1, 1.0, 4)
        with pytest.raises(ObservabilityError):
            exponential_buckets(1, 2, 0)

    def test_default_cycle_buckets_are_increasing(self):
        assert list(DEFAULT_CYCLE_BUCKETS) == sorted(DEFAULT_CYCLE_BUCKETS)


# ---------------------------------------------------------------------------
# Tracer and timeline export
# ---------------------------------------------------------------------------


class TestTracer:
    def test_record_and_group_by_packet(self):
        tr = Tracer()
        tr.record("ingress", 10, lc=0, pid=0, dest=42)
        tr.record("cache.miss", 10, lc=0, pid=0)
        tr.record("complete", 15, lc=0, pid=0)
        tr.record("flush", 20)
        assert len(tr) == 4
        pkts = tr.packets()
        assert list(pkts) == [0]
        assert [e["name"] for e in pkts[0]] == [
            "ingress", "cache.miss", "complete",
        ]

    def test_span_of(self):
        tr = Tracer()
        tr.record("ingress", 10, lc=1, pid=3)
        tr.record("drop", 25, lc=1, pid=3, reason="crash")
        span = tr.span_of(3)
        assert span == {
            "pid": 3, "lc": 1, "start": 10, "end": 25, "outcome": "dropped",
        }
        assert tr.span_of(99) is None

    def test_clear(self):
        tr = Tracer()
        tr.record("flush", 1)
        tr.clear()
        assert len(tr) == 0

    def test_simulator_only_emits_known_event_names(self, table):
        tr = Tracer()
        traced_run(table, trace=tr)
        assert len(tr) > 0
        assert {e["name"] for e in tr} <= EVENT_NAMES

    def test_disabled_tracer_is_normalized_away(self, table):
        tr = Tracer(enabled=False)
        sim, _ = traced_run(table, trace=tr)
        assert sim._trace is None
        assert len(tr) == 0


class TestTimeline:
    def test_jsonl_round_trip(self, table, tmp_path):
        tr = Tracer()
        traced_run(table, trace=tr)
        path = tmp_path / "events.jsonl"
        n = export_jsonl(tr, path)
        assert n == len(tr)
        assert load_jsonl(path) == tr.events

    def test_chrome_trace_has_one_track_per_lc_and_per_link(self, table):
        tr = Tracer()
        traced_run(table, n_lcs=2, trace=tr)
        doc = chrome_trace(tr)
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        lc_tracks = {
            e["tid"]
            for e in meta
            if e["name"] == "thread_name" and e["pid"] == PID_LINE_CARDS
        }
        assert lc_tracks == {0, 1}
        link_names = {
            e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name" and e["pid"] == PID_FABRIC
        }
        # Both directions of the 2-LC fabric carried traffic.
        assert link_names == {"link 0->1", "link 1->0"}

    def test_chrome_trace_spans_cover_every_completed_packet(self, table):
        """The acceptance criterion: every non-dropped packet has a span
        covering ingress -> completion (validate raises otherwise)."""
        tr = Tracer()
        _, result = traced_run(table, n_lcs=2, trace=tr)
        doc = chrome_trace(tr)
        validate_chrome_trace(doc, n_lcs=2, tracer=tr)
        spans = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"].startswith("pkt ")
        ]
        completed = sum(
            1 for e in tr if e["name"] == "complete"
        )
        assert completed == result.packets
        assert len(spans) == completed

    def test_export_writes_valid_json(self, table, tmp_path):
        tr = Tracer()
        traced_run(table, trace=tr)
        path = tmp_path / "trace.json"
        doc = export_chrome_trace(tr, path, name="unit")
        on_disk = json.loads(path.read_text())
        assert on_disk["otherData"]["name"] == "unit"
        assert len(on_disk["traceEvents"]) == len(doc["traceEvents"])

    def test_validation_rejects_malformed_documents(self):
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"nope": []})
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"traceEvents": "nope"})
        with pytest.raises(ObservabilityError):
            validate_chrome_trace({"traceEvents": [{"ph": "Q"}]})
        with pytest.raises(ObservabilityError):
            validate_chrome_trace(
                {"traceEvents": [
                    {"ph": "X", "pid": 1, "tid": 0, "name": "x", "ts": -1}
                ]}
            )

    def test_validation_requires_all_lc_tracks(self, table):
        tr = Tracer()
        traced_run(table, n_lcs=2, trace=tr)
        doc = chrome_trace(tr)
        with pytest.raises(ObservabilityError):
            validate_chrome_trace(doc, n_lcs=4)


# ---------------------------------------------------------------------------
# Simulator / router integration
# ---------------------------------------------------------------------------


class TestMetricsSnapshot:
    def test_simulator_snapshot_contents(self, table):
        reg = MetricsRegistry()
        _, result = traced_run(table, n_lcs=2, registry=reg)
        snap = result.metrics_snapshot
        assert snap == reg.snapshot()
        total = sum(len(s) for s in small_streams(2))
        assert snap["sim.packets{outcome=completed}"] == total
        assert snap["sim.packets{outcome=dropped}"] == 0
        assert snap["fabric.msgs{kind=sent}"] == result.fabric_messages
        for lc in (0, 1):
            assert snap[f"fe.lookups{{lc={lc}}}"] == result.fe_lookups[lc]
            assert (
                snap[f"cache.lr.lookups{{lc={lc}}}"]
                == result.cache_stats[lc]["lookups"]
            )
        rt = snap["sim.rem.round_trip_cycles"]
        assert rt["count"] > 0  # some lookups crossed the fabric

    def test_phase_seconds_live_on_simulator_not_result(self, table):
        sim, result = traced_run(table)
        assert set(sim.phase_seconds) == {
            "precompute", "schedule", "run", "collect",
        }
        assert all(v >= 0 for v in sim.phase_seconds.values())
        assert not hasattr(result, "phase_seconds")

    def test_top_metrics(self):
        r = SimulationResult(
            name="t", n_lcs=1, latencies=np.array([1]), horizon_cycles=1,
            metrics_snapshot={
                "a.small": 1,
                "b.big": 50,
                "c.hist": {"count": 10, "sum": 1.0, "mean": 0.1, "buckets": {}},
            },
        )
        assert r.top_metrics(2) == [("b.big", 50.0), ("c.hist", 10.0)]

    def test_router_metrics_snapshot(self, table):
        router = SpalRouter(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=32))
        )
        for a in range(0, 50_000, 997):
            router.lookup(a, a % 2)
        snap = router.metrics_snapshot()
        assert snap["router.lookups"] == router.stats.lookups
        assert (
            snap["router.remote_requests"] == router.stats.remote_requests
        )
        assert "cache.lr.hit_rate{lc=0}" in snap
        assert "partition.routes{lc=1}" in snap


class TestLegacyResults:
    """analysis.metrics tolerates results minted before the fault layer
    (e.g. unpickled from an old sweep) that lack the degraded-mode fields."""

    @staticmethod
    def legacy_result():
        r = SimulationResult.__new__(SimulationResult)
        # Only the fields the pre-fault dataclass had.
        r.name = "old"
        r.n_lcs = 2
        r.latencies = np.array([4, 6], dtype=np.int64)
        r.horizon_cycles = 100
        r.cache_stats = [{}, {}]
        r.fe_lookups = [1, 1]
        r.fe_utilization = [0.1, 0.1]
        r.fabric_messages = 0
        r.flushes = 0
        r.extra = {}
        return r

    def test_drop_rate_returns_zero(self):
        assert drop_rate(self.legacy_result()) == 0.0

    def test_degraded_mode_summary_returns_fault_free_row(self):
        row = degraded_mode_summary(self.legacy_result())
        assert row["ingress_drops"] == 0
        assert row["crash_drops"] == 0
        assert row["unreachable_drops"] == 0
        assert row["delivery_rate"] == 1.0
        assert row["retries"] == 0
        assert row["fabric_lost"] == 0
        assert row["failover_packets"] == 0
        assert row["min_availability"] == 1.0

    def test_current_results_unchanged(self, table):
        _, result = traced_run(table)
        assert drop_rate(result) == 0.0
        assert degraded_mode_summary(result)["delivery_rate"] == 1.0


# ---------------------------------------------------------------------------
# Kernel profiling hooks
# ---------------------------------------------------------------------------


class TestKernelProfile:
    def test_touches_by_level_is_reverse_cumulative(self):
        p = KernelProfile("unit")
        p.record_batch(np.array([1, 2, 2, 3]), 0.5)
        # 4 lookups reached level 1, 3 reached level 2, 1 reached level 3.
        assert p.touches_by_level() == [4, 3, 1]
        assert p.batch_lookups == 4
        assert p.mean_accesses == pytest.approx(2.0)
        assert p.traverse_seconds == pytest.approx(0.5)

    def test_profile_matcher_is_transparent(self, table):
        addrs = np.random.default_rng(0).integers(
            0, 1 << 32, 2000, dtype=np.uint64
        )
        matcher = LuleaTrie(table)
        plain = matcher.measure(addrs)
        matcher = LuleaTrie(table)
        measured, profile = profile_matcher(matcher, addrs)
        assert measured == plain
        assert matcher.profiler is None  # hook removed afterwards
        assert profile.lookups == len(addrs)
        assert profile.compile_calls == 1
        touches = profile.touches_by_level()
        assert touches and touches[0] == len(addrs)
        # Monotonically non-increasing by construction.
        assert all(a >= b for a, b in zip(touches, touches[1:]))

    def test_observe_into_publishes_gauges(self, table):
        reg = MetricsRegistry()
        addrs = np.arange(500, dtype=np.uint64)
        profile_matcher(LuleaTrie(table), addrs, registry=reg)
        snap = reg.snapshot()
        assert snap["trie.kernel.lookups{kernel=LL}"] == 500
        assert "trie.kernel.compile_seconds{kernel=LL}" in snap
        assert any(k.startswith("trie.kernel.level_touches") for k in snap)

    def test_measure_with_profiler_keyword(self, table):
        profile = KernelProfile("ll")
        matcher = LuleaTrie(table)
        matcher.measure(np.arange(100, dtype=np.uint64), profiler=profile)
        assert profile.lookups == 100
        assert matcher.profiler is None
