"""Batch lookup kernels: equivalence with scalar lookups, partition batch
helpers, and the simulator fast path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CacheConfig, SpalConfig
from repro.core.partition import (
    PartitionError,
    partition_table,
    pattern_of,
    pattern_of_batch,
    select_partition_bits,
)
from repro.routing import Prefix, RoutingTable, random_small_table
from repro.sim import SpalSimulator
from repro.sim.spal_sim import _Packet
from repro.traffic import FlowPopulation, TraceSpec, generate_router_streams
from repro.tries import (
    BinaryTrie,
    Dir24_8,
    DPTrie,
    HashReferenceMatcher,
    LCTrie,
    LuleaTrie,
    MultibitTrie,
)

#: Factories for every matcher; kernels exist for the first five, the last
#: two exercise the generic scalar fallback.
MATCHERS = [
    BinaryTrie,
    LCTrie,
    LuleaTrie,
    MultibitTrie,
    HashReferenceMatcher,
    DPTrie,
    lambda t: Dir24_8(t, first_stride=12),
]
MATCHER_IDS = ["binary", "lc", "lulea", "multibit", "ref", "dp", "dir24"]

IPV6_MATCHERS = [
    BinaryTrie,
    LCTrie,
    LuleaTrie,
    lambda t: MultibitTrie(t, strides=(16,) + (8,) * 14),
    HashReferenceMatcher,
]
IPV6_IDS = ["binary", "lc", "lulea", "multibit", "ref"]


@st.composite
def prefixes(draw, width=32):
    length = draw(st.integers(0, width))
    value = draw(st.integers(0, (1 << width) - 1))
    mask = ((1 << length) - 1) << (width - length) if length else 0
    return Prefix(value & mask, length, width)


@st.composite
def tables(draw, min_routes=1, max_routes=40, width=32):
    routes = draw(
        st.lists(
            st.tuples(prefixes(width), st.integers(0, 63)),
            min_size=min_routes,
            max_size=max_routes,
        )
    )
    table = RoutingTable(width)
    for prefix, hop in routes:
        table.update(prefix, hop)
    return table


def assert_batch_equals_scalar(factory, table, addrs):
    """Batch hops AND access counters must be bit-identical to a scalar
    loop over two fresh instances."""
    scalar = factory(table)
    batch = factory(table)
    want = np.array([scalar.lookup(int(a)) for a in addrs], dtype=np.int64)
    got = batch.lookup_batch(addrs)
    assert got.dtype == np.int64
    np.testing.assert_array_equal(got, want)
    assert batch.counter.lookups == scalar.counter.lookups
    assert batch.counter.accesses == scalar.counter.accesses
    assert batch.counter.max_accesses == scalar.counter.max_accesses


class TestBatchEqualsScalar:
    @pytest.mark.parametrize("factory", MATCHERS, ids=MATCHER_IDS)
    @given(table=tables(), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_random_tables(self, factory, table, data):
        addrs = data.draw(
            st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=40)
        )
        assert_batch_equals_scalar(factory, table, addrs)

    @pytest.mark.parametrize("factory", MATCHERS, ids=MATCHER_IDS)
    def test_empty_table(self, factory):
        table = RoutingTable(32)
        assert_batch_equals_scalar(factory, table, list(range(10)))

    @pytest.mark.parametrize("factory", MATCHERS, ids=MATCHER_IDS)
    def test_default_route_only(self, factory):
        table = RoutingTable(32)
        table.update(Prefix(0, 0, 32), 9)
        assert_batch_equals_scalar(
            factory, table, [0, 1, (1 << 32) - 1, 0x80000000]
        )

    @pytest.mark.parametrize("factory", MATCHERS, ids=MATCHER_IDS)
    def test_empty_batch(self, factory):
        table = random_small_table(50, seed=11)
        out = factory(table).lookup_batch(np.empty(0, dtype=np.uint64))
        assert out.shape == (0,) and out.dtype == np.int64

    @pytest.mark.parametrize("factory", IPV6_MATCHERS, ids=IPV6_IDS)
    @given(table=tables(width=128), data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_ipv6_scalar_fallback(self, factory, table, data):
        # Width 128 exceeds the uint64 kernels; lookup_batch must fall back
        # to the scalar loop transparently.
        addrs = data.draw(
            st.lists(st.integers(0, (1 << 128) - 1), min_size=1, max_size=15)
        )
        assert_batch_equals_scalar(factory, table, addrs)

    @pytest.mark.parametrize("factory", MATCHERS, ids=MATCHER_IDS)
    @pytest.mark.slow
    def test_env_escape_hatch(self, factory, monkeypatch):
        table = random_small_table(200, seed=21)
        rng = np.random.default_rng(2)
        addrs = rng.integers(0, 1 << 32, size=500, dtype=np.uint64)
        on = factory(table).lookup_batch(addrs)
        monkeypatch.setenv("REPRO_BATCH", "0")
        off = factory(table).lookup_batch(addrs)
        np.testing.assert_array_equal(on, off)

    def test_insert_invalidates_compiled_kernel(self):
        table = random_small_table(100, seed=31)
        trie = BinaryTrie(table)
        addr = 0xC0A80101
        before = int(trie.lookup_batch([addr])[0])
        trie.insert(Prefix(addr & ~0xFF, 24, 32), 61)
        assert int(trie.lookup_batch([addr])[0]) == 61 != before


class TestPartitionBatch:
    @pytest.fixture(scope="class")
    def table(self):
        return random_small_table(600, seed=41)

    def test_pattern_of_batch_matches(self, table):
        bits = select_partition_bits(table, 3)
        rng = np.random.default_rng(3)
        addrs = rng.integers(0, 1 << 32, size=2000, dtype=np.uint64)
        got = pattern_of_batch(addrs, bits, 32)
        want = [pattern_of(int(a), bits, 32) for a in addrs]
        np.testing.assert_array_equal(got, want)

    def test_bit_selection_matches_scalar(self, table, monkeypatch):
        vec = select_partition_bits(table, 4)
        monkeypatch.setenv("REPRO_BATCH", "0")
        scalar = select_partition_bits(table, 4)
        assert vec == scalar

    @pytest.mark.parametrize("replicas", [1, 3])
    def test_home_lc_batch_matches(self, table, replicas):
        plan = partition_table(table, 6, replicas=replicas)
        if replicas > 1:
            plan.fail_lc(2)
        rng = np.random.default_rng(4)
        addrs = rng.integers(0, 1 << 32, size=3000, dtype=np.uint64)
        got = plan.home_lc_batch(addrs)
        want = [plan.home_lc(int(a)) for a in addrs]
        np.testing.assert_array_equal(got, want)

    def test_home_lc_batch_scalar_fallback(self, table, monkeypatch):
        plan = partition_table(table, 4)
        rng = np.random.default_rng(5)
        addrs = rng.integers(0, 1 << 32, size=500, dtype=np.uint64)
        on = plan.home_lc_batch(addrs)
        monkeypatch.setenv("REPRO_BATCH", "0")
        off = plan.home_lc_batch(addrs)
        np.testing.assert_array_equal(on, off)

    def test_all_replicas_failed_raises(self, table):
        plan = partition_table(table, 4, replicas=2)
        for lc in range(4):
            plan.fail_lc(lc)
        with pytest.raises(PartitionError, match="replicas"):
            plan.home_lc_batch(np.arange(10, dtype=np.uint64))


def _result_fingerprint(r):
    return (
        r.latencies.tobytes(),
        r.horizon_cycles,
        tuple(tuple(sorted(d.items())) for d in r.cache_stats),
        tuple(r.fe_lookups),
        tuple(r.fe_utilization),
        r.fabric_messages,
        r.flushes,
        tuple(r.extra["max_fe_backlog"]),
    )


class TestSimulatorFastPath:
    @pytest.fixture(scope="class")
    def table(self):
        return random_small_table(300, seed=51)

    @pytest.fixture(scope="class")
    def streams(self, table):
        pop = FlowPopulation(TraceSpec("t", n_flows=400, seed=7), table)
        return generate_router_streams(pop, 2, 2500)

    def _run(self, table, streams, **kw):
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=128)), **kw
        )
        return sim.run(streams, flush_cycles=[4000])

    def test_bit_identical_fast_path_on_off(self, table, streams, monkeypatch):
        fast = self._run(table, streams, verify=True)
        monkeypatch.setenv("REPRO_BATCH", "0")
        slow = self._run(table, streams, verify=True)
        assert _result_fingerprint(fast) == _result_fingerprint(slow)

    def test_injected_plan_matches_fresh(self, table, streams):
        plan = partition_table(table, 2)
        matchers = [HashReferenceMatcher(t) for t in plan.tables]
        injected = self._run(table, streams, plan=plan, matchers=matchers)
        fresh = self._run(table, streams)
        assert _result_fingerprint(injected) == _result_fingerprint(fresh)

    def test_injected_plan_wrong_psi_rejected(self, table):
        from repro.errors import SimulationError

        plan = partition_table(table, 4)
        with pytest.raises(SimulationError, match="LCs"):
            SpalSimulator(table, SpalConfig(n_lcs=2), plan=plan)

    def test_injected_plan_stale_version_rejected(self):
        from repro.errors import SimulationError

        table = random_small_table(100, seed=52)
        plan = partition_table(table, 2)
        table.update(Prefix(0x0A000000, 8, 32), 13)
        with pytest.raises(SimulationError, match="version"):
            SpalSimulator(table, SpalConfig(n_lcs=2), plan=plan)

    def test_injection_requires_partitioned(self, table):
        from repro.errors import SimulationError

        plan = partition_table(table, 2)
        with pytest.raises(SimulationError, match="partitioned"):
            SpalSimulator(
                table, SpalConfig(n_lcs=2), partitioned=False, plan=plan
            )


class TestCachePortSaturation:
    def test_same_cycle_probes_serialize_without_double_booking(self):
        """N packets hitting one LC's cache in the same cycle must consume
        exactly N port slots: the deferred probes run in the slot reserved
        at arrival instead of acquiring a second one."""
        table = random_small_table(100, seed=61)
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64))
        )
        rng = np.random.default_rng(6)
        dests = rng.choice(1 << 32, size=16, replace=False)
        for dest in dests:
            sim.queue.schedule(0, sim._arrive, _Packet(int(dest), 0, 0), 0)
        sim.queue.run()
        assert sim.cache_ports[0].busy_cycles == len(dests)
        assert len(sim.completed) == len(dests)
