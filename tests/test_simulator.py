"""Tests for the discrete-event engine and the SPAL cycle simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.core import CacheConfig, SpalConfig
from repro.routing import random_small_table
from repro.sim import (
    ConventionalSimulator,
    EventQueue,
    Resource,
    SpalSimulator,
    cache_only_simulator,
    conventional_mean_cycles,
    conventional_mpps,
)
from repro.traffic import FlowPopulation, TraceSpec, generate_router_streams


@pytest.fixture(scope="module")
def table():
    return random_small_table(300, seed=60)


def streams_for(table, n_lcs, n_packets, seed=1, **spec_kw):
    spec = TraceSpec("test", n_flows=400, seed=seed, **spec_kw)
    pop = FlowPopulation(spec, table)
    return generate_router_streams(pop, n_lcs, n_packets)


class TestEventQueue:
    def test_ordering_and_stability(self):
        q = EventQueue()
        out = []
        q.schedule(5, out.append, "b")
        q.schedule(3, out.append, "a")
        q.schedule(5, out.append, "c")
        q.run()
        assert out == ["a", "b", "c"]

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.schedule(2, lambda: q.schedule(1, lambda: None))
        with pytest.raises(SimulationError):
            q.run()

    def test_run_until(self):
        q = EventQueue()
        out = []
        for t in (1, 5, 9):
            q.schedule(t, out.append, t)
        q.run(until=5)
        assert out == [1, 5]
        q.run()
        assert out == [1, 5, 9]

    def test_handler_scheduling_more_events(self):
        q = EventQueue()
        out = []

        def chain(n):
            out.append(n)
            if n < 3:
                q.schedule(q.now + 1, chain, n + 1)

        q.schedule(0, chain, 0)
        q.run()
        assert out == [0, 1, 2, 3]


class TestResource:
    def test_serialization(self):
        r = Resource()
        assert r.acquire(0, 10) == (0, 10)
        assert r.acquire(5, 10) == (10, 20)  # queued behind the first
        assert r.acquire(50, 10) == (50, 60)  # idle gap

    def test_utilization(self):
        r = Resource()
        r.acquire(0, 30)
        assert r.utilization(60) == pytest.approx(0.5)
        assert r.utilization(0) == 0.0


class TestSpalSimulator:
    def test_all_packets_complete(self, table):
        sim = SpalSimulator(
            table,
            SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256, victim_blocks=4)),
        )
        result = sim.run(streams_for(table, 4, 500), name="t")
        assert result.packets == 2000
        assert (result.latencies >= 1).all()

    def test_latency_bounds(self, table):
        """A cache hit costs ≥1 cycle; a worst-case miss is bounded by FE
        time plus queueing plus two fabric transits."""
        sim = SpalSimulator(
            table,
            SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=1024)),
        )
        result = sim.run(streams_for(table, 2, 800))
        assert result.mean_lookup_cycles >= 1.0
        assert result.max_lookup_cycles >= 40

    def test_cache_lowers_mean_latency(self, table):
        cached = SpalSimulator(
            table, SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=1024))
        ).run(streams_for(table, 4, 1000))
        uncached = SpalSimulator(
            table, SpalConfig(n_lcs=4, cache=None)
        ).run(streams_for(table, 4, 1000))
        assert cached.mean_lookup_cycles < uncached.mean_lookup_cycles

    def test_hit_rate_reported(self, table):
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=2048))
        )
        result = sim.run(streams_for(table, 2, 2000, recency=0.3))
        assert 0.3 < result.overall_hit_rate <= 1.0

    def test_wrong_stream_count(self, table):
        sim = SpalSimulator(table, SpalConfig(n_lcs=4))
        with pytest.raises(SimulationError):
            sim.run(streams_for(table, 2, 10))

    def test_flush_mid_run(self, table):
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=512))
        )
        result = sim.run(
            streams_for(table, 2, 1000), flush_cycles=[2000, 4000]
        )
        assert result.flushes == 2
        assert result.packets == 2000  # flushes lose no packets

    def test_flush_hurts_latency(self, table):
        streams = streams_for(table, 2, 1500, seed=9)
        quiet = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=1024))
        ).run([s.copy() for s in streams])
        noisy = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=1024))
        ).run(
            [s.copy() for s in streams],
            flush_cycles=list(range(500, 8000, 500)),
        )
        assert noisy.mean_lookup_cycles > quiet.mean_lookup_cycles

    def test_10gbps_slower_arrivals(self, table):
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=512))
        )
        result = sim.run(streams_for(table, 2, 500), speed_gbps=10)
        # Mean interarrival 40 cycles -> horizon near 40*500.
        assert result.horizon_cycles >= 35 * 500

    def test_remote_sharing_cuts_fe_load(self, table):
        """The same popular destinations hit at all LCs; with sharing, each
        home LC computes a result once and the caches serve the rest."""
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=2048))
        )
        result = sim.run(streams_for(table, 4, 2000, recency=0.2))
        assert sum(result.fe_lookups) < result.packets * 0.7

    def test_fabric_traffic_counted(self, table):
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256))
        )
        result = sim.run(streams_for(table, 4, 500))
        assert result.fabric_messages > 0

    def test_early_recording_reduces_fabric_traffic(self, table):
        streams = streams_for(table, 4, 1500, seed=11, recency=0.35)
        on = SpalSimulator(
            table,
            SpalConfig(
                n_lcs=4, cache=CacheConfig(n_blocks=512), early_recording=True
            ),
        ).run([s.copy() for s in streams])
        off = SpalSimulator(
            table,
            SpalConfig(
                n_lcs=4, cache=CacheConfig(n_blocks=512), early_recording=False
            ),
        ).run([s.copy() for s in streams])
        assert on.fabric_messages <= off.fabric_messages

    def test_deterministic(self, table):
        def once():
            sim = SpalSimulator(
                table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=256))
            )
            return sim.run(streams_for(table, 2, 600)).mean_lookup_cycles

        assert once() == once()


class TestBaselines:
    def test_conventional_analytic(self):
        assert conventional_mean_cycles(40) == 40.0
        # 40 cycles = 200 ns -> 5 Mpps per LC (paper Sec. 5.2).
        assert conventional_mpps(16, 40) == pytest.approx(80.0)

    def test_conventional_simulated_saturates_at_40g(self, table):
        sim = ConventionalSimulator(n_lcs=2, fe_lookup_cycles=40)
        result = sim.run(streams_for(table, 2, 500), speed_gbps=40)
        # Offered interarrival ~10 cycles < 40-cycle service: queue builds.
        assert result.mean_lookup_cycles > 100

    def test_conventional_stable_at_10g(self, table):
        sim = ConventionalSimulator(n_lcs=2, fe_lookup_cycles=40)
        result = sim.run(streams_for(table, 2, 500), speed_gbps=10)
        # Offered 40-cycle interarrival ~= service rate: no blow-up.
        assert result.mean_lookup_cycles < 400

    def test_conventional_validation(self):
        with pytest.raises(SimulationError):
            ConventionalSimulator(0)
        with pytest.raises(SimulationError):
            ConventionalSimulator(2, fe_lookup_cycles=0)

    def test_cache_only_all_local(self, table):
        sim = cache_only_simulator(
            table, SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=512))
        )
        result = sim.run(streams_for(table, 4, 500))
        assert result.fabric_messages == 0
        assert result.packets == 2000

    def test_spal_beats_cache_only(self, table):
        """Partitioning + sharing must beat caches alone at equal size:
        the paper's central claim."""
        streams = streams_for(table, 8, 1500, seed=13)
        spal = SpalSimulator(
            table, SpalConfig(n_lcs=8, cache=CacheConfig(n_blocks=256))
        ).run([s.copy() for s in streams])
        only = cache_only_simulator(
            table, SpalConfig(n_lcs=8, cache=CacheConfig(n_blocks=256))
        ).run([s.copy() for s in streams])
        assert spal.mean_lookup_cycles < only.mean_lookup_cycles

    def test_length_partitioned_storage(self, table):
        from repro.sim import LengthPartitionedRouter

        router = LengthPartitionedRouter(table)
        assert router.per_lc_prefixes() == len(table)
        assert 0 < router.largest_subset_share() <= 1.0
        assert sum(router.subset_sizes().values()) == len(table)


class TestResultSummary:
    def test_summary_fields(self, table):
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=256))
        )
        result = sim.run(streams_for(table, 2, 400))
        s = result.summary()
        assert s["packets"] == 800
        assert s["mean_cycles"] > 0
        assert s["router_mpps"] > 0
        assert result.percentile(50) <= result.percentile(99)
        assert result.mean_lookup_ns == pytest.approx(
            result.mean_lookup_cycles * 5.0
        )


class TestEngineLimits:
    def test_max_events_stops_early(self):
        from repro.sim import EventQueue

        q = EventQueue()
        out = []
        for t in range(10):
            q.schedule(t, out.append, t)
        q.run(max_events=4)
        assert len(out) == 4
        q.run()
        assert len(out) == 10

    def test_latency_timeline(self):
        import numpy as np
        from repro.sim.results import SimulationResult

        r = SimulationResult(
            name="t",
            n_lcs=1,
            latencies=np.array([10, 10, 2, 2], dtype=np.int64),
            horizon_cycles=100,
        )
        assert r.latency_timeline(2) == [10.0, 2.0]
        import pytest as _pt

        with _pt.raises(ValueError):
            r.latency_timeline(0)
