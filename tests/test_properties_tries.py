"""Property-based tests (hypothesis) for prefixes and LPM structures."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.routing import Prefix, RoutingTable
from repro.tries import (
    BinaryTrie,
    Dir24_8,
    DPTrie,
    HashReferenceMatcher,
    LCTrie,
    LuleaTrie,
    MultibitTrie,
)


@st.composite
def prefixes(draw, width=32, max_length=None):
    length = draw(st.integers(0, max_length or width))
    value = draw(st.integers(0, (1 << width) - 1))
    mask = ((1 << length) - 1) << (width - length) if length else 0
    return Prefix(value & mask, length, width)


@st.composite
def tables(draw, min_routes=1, max_routes=40, width=32, max_length=None):
    routes = draw(
        st.lists(
            st.tuples(prefixes(width, max_length), st.integers(0, 63)),
            min_size=min_routes,
            max_size=max_routes,
        )
    )
    table = RoutingTable(width)
    for prefix, hop in routes:
        table.update(prefix, hop)
    return table


addresses = st.integers(0, (1 << 32) - 1)


class TestPrefixProperties:
    @given(prefixes())
    def test_roundtrip_binary_notation(self, p):
        assert Prefix.from_string(p.to_binary() or "*", p.width) == p

    @given(prefixes())
    def test_matches_own_range_endpoints(self, p):
        assert p.matches(p.first_address())
        assert p.matches(p.last_address())

    @given(prefixes(), prefixes())
    def test_containment_is_range_inclusion(self, a, b):
        contained = a.contains(b)
        range_incl = (
            a.first_address() <= b.first_address()
            and b.last_address() <= a.last_address()
        )
        assert contained == range_incl

    @given(prefixes(), addresses)
    def test_bitwise_match_equivalence(self, p, addr):
        bitwise = all(
            ((addr >> (31 - i)) & 1) == p.bit(i) for i in range(p.length)
        )
        assert p.matches(addr) == bitwise


class TestTrieEquivalence:
    """Every structure must agree with the reference oracle on any table."""

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_binary_trie(self, table, addrs):
        trie = BinaryTrie(table)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_dp_trie(self, table, addrs):
        trie = DPTrie(table)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_lulea(self, table, addrs):
        trie = LuleaTrie(table)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_lc_trie(self, table, addrs):
        trie = LCTrie(table)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(
        tables(),
        st.lists(addresses, min_size=1, max_size=30),
        st.floats(0.1, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_lc_trie_any_fill_factor(self, table, addrs, fill):
        trie = LCTrie(table, fill_factor=fill)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_multibit(self, table, addrs):
        trie = MultibitTrie(table)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_dir24(self, table, addrs):
        trie = Dir24_8(table, first_stride=12)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)

    @given(tables(), st.lists(addresses, min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_hash_reference(self, table, addrs):
        trie = HashReferenceMatcher(table)
        for a in addrs:
            assert trie.lookup(a) == table.lookup(a)


class TestIncrementalProperties:
    @given(tables(min_routes=2, max_routes=25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_binary_trie_delete_matches_rebuild(self, table, data):
        trie = BinaryTrie(table)
        victim = data.draw(st.sampled_from(table.prefixes()))
        trie.delete(victim)
        reduced = table.copy()
        reduced.remove(victim)
        rebuilt = BinaryTrie(reduced)
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 1 << 32, size=50):
            assert trie.lookup(int(a)) == rebuilt.lookup(int(a))

    @given(tables(min_routes=2, max_routes=25), st.data())
    @settings(max_examples=40, deadline=None)
    def test_dp_trie_delete_matches_rebuild(self, table, data):
        trie = DPTrie(table)
        victim = data.draw(st.sampled_from(table.prefixes()))
        trie.delete(victim)
        reduced = table.copy()
        reduced.remove(victim)
        rebuilt = DPTrie(reduced)
        rng = np.random.default_rng(0)
        for a in rng.integers(0, 1 << 32, size=50):
            assert trie.lookup(int(a)) == rebuilt.lookup(int(a))

    @given(tables(min_routes=1, max_routes=25))
    @settings(max_examples=40, deadline=None)
    def test_dp_trie_walk_returns_all_routes(self, table):
        trie = DPTrie(table)
        assert sorted(trie.walk()) == sorted(table.routes())

    @given(tables(min_routes=1, max_routes=25))
    @settings(max_examples=40, deadline=None)
    def test_insert_order_irrelevant(self, table):
        routes = list(table.routes())
        forward = DPTrie(width=32)
        backward = DPTrie(width=32)
        for p, h in routes:
            forward.insert(p, h)
        for p, h in reversed(routes):
            backward.insert(p, h)
        rng = np.random.default_rng(1)
        for a in rng.integers(0, 1 << 32, size=50):
            assert forward.lookup(int(a)) == backward.lookup(int(a))
