"""Tests for ORTC table aggregation (routing.aggregate / minimize).

The recursive constructor survives as ``_aggregate_table_recursive``, the
independent oracle; the public entry points now run the packed-array
pipeline in :mod:`repro.routing.minimize`."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import Prefix, RoutingTable, random_small_table
from repro.routing.aggregate import (
    _aggregate_table_recursive,
    aggregate_table,
    aggregation_ratio,
)
from repro.routing.minimize import ortc_table


def assert_lpm_equivalent(original, aggregated, n_probes=400, seed=0):
    rng = np.random.default_rng(seed)
    for a in rng.integers(0, 1 << original.width, size=n_probes):
        a = int(a)
        assert aggregated.lookup(a) == original.lookup(a), hex(a)


class TestKnownCases:
    def test_mergeable_siblings(self):
        # Two /9 halves with the same hop collapse into one /8.
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.128.0.0/9", 1)]
        )
        agg = ortc_table(table)
        assert len(agg) == 1
        assert agg.lookup(0x0A000001) == 1
        assert agg.lookup(0x0AFFFFFF) == 1
        assert agg.lookup(0x0B000001) == -1

    def test_redundant_child_removed(self):
        # A /16 with the same hop as its covering /8 is redundant.
        table = RoutingTable.from_strings(
            [("10.0.0.0/8", 1), ("10.1.0.0/16", 1), ("10.2.0.0/16", 2)]
        )
        agg = ortc_table(table)
        assert len(agg) < 3
        assert_lpm_equivalent(table, agg)

    def test_distinct_hops_not_merged(self):
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.128.0.0/9", 2)]
        )
        agg = ortc_table(table)
        assert_lpm_equivalent(table, agg)
        assert len(agg) == 2

    def test_null_route_hole(self):
        """A hole in a covering route needs an explicit null route; LPM
        equivalence must hold for addresses inside the hole."""
        table = RoutingTable.from_strings(
            [
                ("0.0.0.0/1", 1),
                ("0.0.0.0/2", 1),
                # The range 64.0.0.0/2 is covered by /1 only.
            ]
        )
        # Build a table where aggregation could be tempted to widen 1:
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.64.0.0/10", 1)]
        )
        agg = ortc_table(table)
        assert_lpm_equivalent(table, agg, seed=3)
        # Addresses just outside the original coverage stay unmatched.
        assert agg.lookup(0x0A800000) == -1

    def test_empty_table(self):
        agg = ortc_table(RoutingTable())
        assert len(agg) == 0

    def test_default_only(self):
        table = RoutingTable.from_strings([("0.0.0.0/0", 5)])
        agg = ortc_table(table)
        assert agg.lookup(0x12345678) == 5
        assert len(agg) == 1


class TestAtScale:
    def test_rt1_like_table_shrinks(self):
        table = random_small_table(800, seed=44, max_length=20)
        agg = ortc_table(table)
        assert len(agg) <= len(table)
        assert_lpm_equivalent(table, agg, seed=4)

    def test_backbone_table(self):
        from repro.routing import make_rt1

        table = make_rt1(size=3000)
        agg = ortc_table(table)
        assert len(agg) <= len(table)
        assert_lpm_equivalent(table, agg, n_probes=300, seed=5)

    def test_ratio(self):
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.128.0.0/9", 1)]
        )
        assert aggregation_ratio(table) == pytest.approx(2.0)
        assert aggregation_ratio(RoutingTable()) == 1.0

    def test_idempotent(self):
        table = random_small_table(200, seed=45)
        once = ortc_table(table)
        twice = ortc_table(once)
        assert len(twice) == len(once)


@st.composite
def tables(draw):
    routes = draw(
        st.lists(
            st.tuples(
                st.integers(0, (1 << 32) - 1),
                st.integers(0, 32),
                st.integers(0, 7),
            ),
            min_size=1,
            max_size=25,
        )
    )
    table = RoutingTable()
    for value, length, hop in routes:
        mask = ((1 << length) - 1) << (32 - length) if length else 0
        table.update(Prefix(value & mask, length), hop)
    return table


class TestProperties:
    @given(tables(), st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=40))
    @settings(max_examples=120, deadline=None)
    def test_lpm_equivalence(self, table, addrs):
        agg = ortc_table(table)
        for a in addrs:
            assert agg.lookup(a) == table.lookup(a)

    @given(tables())
    @settings(max_examples=80, deadline=None)
    def test_never_larger(self, table):
        assert len(ortc_table(table)) <= len(table)

    @given(tables())
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, table):
        once = ortc_table(table)
        assert len(ortc_table(once)) == len(once)


class TestAggregationExperiment:
    @pytest.mark.slow
    def test_stages_and_monotonicity(self):
        from repro.experiments import run_aggregation

        result = run_aggregation(psi=8)
        assert len(result.rows) == 8  # 2 tables x 4 stages
        by_key = {(r["table"], r["stage"]): r for r in result.rows}
        for table in ("RT_1", "RT_2"):
            orig = by_key[(table, "original")]["routes"]
            agg = by_key[(table, "aggregated")]["routes"]
            coarse_agg = by_key[(table, "k=8 aggregated")]["routes"]
            assert agg <= orig
            # Fewer next-hop classes can only help aggregation.
            assert coarse_agg <= agg


class TestCompositionProperty:
    @given(tables(), st.integers(2, 6),
           st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_aggregate_then_partition_preserves_lpm(self, table, psi, addrs):
        """E15's composition claim as a property: partitioning the
        aggregated table answers exactly like the original table."""
        from repro.core import partition_table

        agg = ortc_table(table)
        plan = partition_table(agg, psi)
        for a in addrs:
            home = plan.home_lc(a)
            assert plan.tables[home].lookup(a) == table.lookup(a)


class TestDeprecatedAlias:
    def test_aggregate_table_warns_and_matches(self):
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.128.0.0/9", 1), ("12.0.0.0/8", 2)]
        )
        with pytest.warns(DeprecationWarning):
            legacy = aggregate_table(table)
        new = ortc_table(table)
        assert sorted(legacy.routes()) == sorted(new.routes())

    def test_recursive_oracle_agrees(self):
        table = random_small_table(400, seed=9, max_length=18)
        ref = _aggregate_table_recursive(table)
        new = ortc_table(table)
        assert sorted(ref.routes()) == sorted(new.routes())
