"""Tests for the analytic queueing models — and cross-validation of the
event-driven simulator against M/D/1 theory."""

import math

import numpy as np
import pytest

from repro.analysis import (
    aggregate_hit_rates,
    compare,
    fe_load_imbalance,
    md1_sojourn,
    md1_wait,
    saturation_hit_rate,
    spal_mean_lookup_estimate,
    speedup,
    utilization,
)
from repro.sim.engine import Resource


class TestMD1:
    def test_zero_load_no_wait(self):
        assert md1_wait(0.0, 40.0) == 0.0
        assert md1_sojourn(0.0, 40.0) == 40.0

    def test_known_value(self):
        # rho = 0.5: W = 0.5*s/(2*0.5) = s/2.
        assert md1_wait(0.0125, 40.0) == pytest.approx(20.0)

    def test_saturation_is_infinite(self):
        assert md1_wait(0.025, 40.0) == math.inf
        assert md1_wait(0.05, 40.0) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            md1_wait(-0.1, 40.0)
        with pytest.raises(ValueError):
            md1_wait(0.1, 0.0)

    def test_utilization(self):
        assert utilization(0.01, 40.0) == pytest.approx(0.4)

    def test_simulated_deterministic_queue_matches_md1(self):
        """Drive a Resource with Poisson arrivals and compare the empirical
        sojourn time with the closed form (within sampling error)."""
        rng = np.random.default_rng(7)
        service = 40
        lam = 0.015  # rho = 0.6
        arrivals = np.cumsum(rng.exponential(1.0 / lam, size=40_000))
        fe = Resource()
        sojourns = []
        for t in arrivals:
            t = int(t)
            _, done = fe.acquire(t, service)
            sojourns.append(done - t)
        expected = md1_sojourn(lam, service)
        measured = float(np.mean(sojourns))
        assert measured == pytest.approx(expected, rel=0.10)


class TestSpalEstimate:
    def test_components(self):
        est = spal_mean_lookup_estimate(hit_rate=0.9, n_lcs=16)
        assert est.hit_cycles < est.local_miss_cycles < est.remote_miss_cycles
        assert 0.0 < est.fe_load < 1.0
        assert est.mean_cycles > est.hit_cycles

    def test_higher_hit_rate_lowers_mean(self):
        lo = spal_mean_lookup_estimate(0.80, 16).mean_cycles
        hi = spal_mean_lookup_estimate(0.95, 16).mean_cycles
        assert hi < lo

    def test_saturation_when_hit_rate_too_low(self):
        est = spal_mean_lookup_estimate(hit_rate=0.5, n_lcs=16)
        assert est.mean_cycles == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            spal_mean_lookup_estimate(1.5, 4)
        with pytest.raises(ValueError):
            spal_mean_lookup_estimate(0.9, 0)

    def test_saturation_hit_rate_paper_point(self):
        # 40 Gbps (lambda=0.1/cycle) x 40-cycle FE -> h > 0.75.
        assert saturation_hit_rate(40, 0.1) == pytest.approx(0.75)
        # 10 Gbps (lambda=0.025) x 40 cycles: exactly at capacity -> h > 0.
        assert saturation_hit_rate(40, 0.025) == pytest.approx(0.0)

    def test_estimate_bounds_simulator_from_above(self):
        """The closed form is a pessimistic bound (it charges every
        arrival-LC miss a full FE lookup, ignoring home-cache hits): the
        simulator must come in below it but within a small factor."""
        from repro.experiments.common import run_spal

        run = run_spal("D_75", n_lcs=8, packets_per_lc=4000)
        est = spal_mean_lookup_estimate(
            hit_rate=run.overall_hit_rate, n_lcs=8
        )
        assert run.mean_lookup_cycles <= est.mean_cycles * 1.2
        assert run.mean_lookup_cycles >= est.mean_cycles * 0.2


class TestMetrics:
    def _result(self, name="x", lat=(2, 4, 6), fe=(10, 10)):
        from repro.sim.results import SimulationResult

        return SimulationResult(
            name=name,
            n_lcs=len(fe),
            latencies=np.array(lat, dtype=np.int64),
            horizon_cycles=100,
            fe_lookups=list(fe),
            cache_stats=[{"lookups": 10, "hits": 9, "waiting_hits": 0,
                          "victim_hits": 0}],
        )

    def test_speedup(self):
        assert speedup(40.0, self._result(lat=(4, 4))) == pytest.approx(10.0)
        import pytest as _pt

        with _pt.raises(ValueError):
            speedup(40.0, self._result(lat=(0,)))

    def test_compare_sorted(self):
        rows = compare({"slow": self._result(lat=(8, 8)),
                        "fast": self._result(lat=(2, 2))})
        assert [r["name"] for r in rows] == ["fast", "slow"]

    def test_fe_load_imbalance(self):
        assert fe_load_imbalance(self._result(fe=(10, 10))) == pytest.approx(1.0)
        assert fe_load_imbalance(self._result(fe=(30, 10))) == pytest.approx(1.5)
        assert fe_load_imbalance(self._result(fe=(0, 0))) == 1.0

    def test_aggregate_hit_rates(self):
        stats = aggregate_hit_rates([self._result(), self._result()])
        assert stats["min"] == stats["max"] == pytest.approx(0.9)
        assert aggregate_hit_rates([]) == {"min": 0.0, "mean": 0.0, "max": 0.0}


class TestMeasuredThroughput:
    def test_measured_mpps(self):
        import numpy as np
        from repro.sim.results import SimulationResult

        # 1000 packets over 10_000 cycles of 5ns = 50us -> 20 Mpps.
        r = SimulationResult(
            name="t", n_lcs=1,
            latencies=np.ones(1000, dtype=np.int64),
            horizon_cycles=10_000,
        )
        assert r.measured_mpps == pytest.approx(20.0)
        empty = SimulationResult(
            name="t", n_lcs=1,
            latencies=np.ones(1, dtype=np.int64), horizon_cycles=0,
        )
        assert empty.measured_mpps == 0.0


class TestResultJSON:
    def test_experiment_to_json(self):
        import json
        from repro.experiments.common import ExperimentResult

        r = ExperimentResult("EX", "title", rows=[{"a": 1, "b": "x"}])
        data = json.loads(r.to_json())
        assert data["exp_id"] == "EX"
        assert data["rows"][0] == {"a": 1, "b": "x"}
