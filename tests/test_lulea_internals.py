"""White-box tests for the Lulea trie's compressed level-1 structures.

The codeword/base/maptable machinery must reconstruct, for every level-1
slot, the number of heads at positions <= the slot — these tests verify
that against a brute-force recount of the slot vector.
"""

import numpy as np
import pytest

from repro.routing import RoutingTable, random_small_table
from repro.tries.lulea import (
    DENSE_MAX_HEADS,
    SPARSE_MAX_HEADS,
    LuleaTrie,
    _encode_chunk,
    _encode_hop,
)


def heads_before_brute(slots, index):
    """Heads at positions <= index, recomputed from raw slot values."""
    count = 0
    prev = None
    for s in range(index + 1):
        if prev is None or slots[s] != prev:
            count += 1
        prev = slots[s]
    return count


class TestEncoding:
    def test_hop_encoding_even(self):
        assert _encode_hop(-1) == 0
        assert _encode_hop(0) == 2
        assert _encode_hop(5) % 2 == 0

    def test_chunk_encoding_odd(self):
        assert _encode_chunk(0) == 1
        assert _encode_chunk(7) % 2 == 1


class TestLevel1Compression:
    @pytest.fixture(scope="class")
    def trie_and_slots(self):
        table = random_small_table(600, seed=71, max_length=16)
        trie = LuleaTrie(table)
        # Reconstruct the raw slot vector the build compressed: lookup of
        # (ix << 16) resolves the level-1 value directly since no route is
        # longer than 16 bits here.
        slots = [trie.lookup(ix << 16) for ix in range(1 << 16)]
        return trie, slots

    def test_pointer_index_reconstruction(self, trie_and_slots):
        """codeword+base+maptable must agree with the brute-force head
        count for a sample of slots."""
        trie, slots = trie_and_slots
        rng = np.random.default_rng(1)
        for ix in rng.integers(0, 1 << 16, size=400):
            ix = int(ix)
            mask_i = ix >> 4
            pos = ix & 15
            row, offset = trie._l1_codewords[mask_i]
            base = trie._l1_bases[mask_i >> 2]
            pix = base + offset + trie._maptable[row][pos] - 1
            # The pointer at pix must decode to this slot's value.
            hop = (trie._l1_ptrs[pix] >> 1) - 1
            assert hop == slots[ix]

    def test_codeword_offsets_fit_six_bits(self, trie_and_slots):
        trie, _ = trie_and_slots
        assert all(0 <= off < 64 for _, off in trie._l1_codewords)

    def test_base_indexes_monotone(self, trie_and_slots):
        trie, _ = trie_and_slots
        bases = trie._l1_bases
        assert all(a <= b for a, b in zip(bases, bases[1:]))

    def test_maptable_rows_are_running_popcounts(self, trie_and_slots):
        trie, _ = trie_and_slots
        for mask, row_id in trie._mask_rows.items():
            row = trie._maptable[row_id]
            running = 0
            for pos in range(16):
                if (mask >> (15 - pos)) & 1:
                    running += 1
                assert row[pos] == running

    def test_maptable_shared_and_bounded(self, trie_and_slots):
        trie, _ = trie_and_slots
        # Distinct masks only (the whole point of the maptable); the
        # original paper proves at most 678 distinct *complete* masks.
        assert len(trie._maptable) == len(trie._mask_rows)
        assert len(trie._maptable) <= 678 + 1  # +1 for the all-zero mask


class TestChunkClassification:
    def test_thresholds(self):
        assert SPARSE_MAX_HEADS == 8
        assert DENSE_MAX_HEADS == 64

    def test_kinds_respect_head_counts(self):
        from repro.routing import make_rt1

        trie = LuleaTrie(make_rt1(size=4000))
        for chunk in trie._chunks:
            n_heads = len(chunk.ptrs)
            if chunk.kind == "sparse":
                assert n_heads <= SPARSE_MAX_HEADS
                assert len(chunk.positions) == n_heads
            elif chunk.kind == "dense":
                assert SPARSE_MAX_HEADS < n_heads <= DENSE_MAX_HEADS
                assert len(chunk.bases) == 1
            else:
                assert n_heads > DENSE_MAX_HEADS
                assert len(chunk.bases) == 4

    def test_sparse_positions_sorted_and_start_at_zero(self):
        from repro.routing import make_rt1

        trie = LuleaTrie(make_rt1(size=2000))
        for chunk in trie._chunks:
            if chunk.kind == "sparse":
                assert chunk.positions[0] == 0
                assert chunk.positions == sorted(chunk.positions)


class TestStorageAccounting:
    def test_storage_tracks_components(self):
        table = random_small_table(400, seed=72)
        trie = LuleaTrie(table)
        total = trie.storage_bytes()
        l1 = (
            len(trie._l1_codewords) * 2
            + len(trie._l1_bases) * 2
            + len(trie._l1_ptrs) * 2
            + len(trie._maptable) * 8
        )
        assert total >= l1
        # Chunks account for the rest.
        assert total - l1 == sum(
            len(c.ptrs) * 2
            + (len(c.positions) if c.kind == "sparse"
               else len(c.codewords) * 2 + len(c.bases) * 2)
            for c in trie._chunks
        )
