"""Chunked streams are semantically invisible: streamed == materialized.

The streaming path (:class:`repro.sim.PacketStream` +
:meth:`ArrayEngine.run_streamed`) promises bit-identity with the
materialized run for *every* chunking — per-packet chunks, odd sizes, one
whole-trace chunk — on both engines (the scalar engine materializes).
This module pins that three ways:

* the six golden scenarios (IPv4/IPv6 × clean/faults/churn) replayed
  through streams at chunk sizes {1, 64, 4096, ∞} and diffed field by
  field against the materialized digest;
* a Hypothesis property that cuts the same traces at *random* chunk
  boundaries — with faults and churn in play — and demands digest **and
  trace-stream** equality;
* unit pins for the stream primitives themselves: the resumable
  :class:`ArrivalClock` equals one-shot :func:`arrival_times` under any
  split, declared-length violations fail loudly, and
  :func:`random_stream` chunks are consumption-order independent.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheConfig, FaultSchedule, SpalConfig
from repro.errors import SimulationError
from repro.obs import Tracer
from repro.routing import random_small_table
from repro.routing.churn import generate_churn
from repro.sim import DEFAULT_CHUNK, PacketStream, SpalSimulator, random_stream
from repro.traffic.packets import ArrivalClock, arrival_times

from .conftest import result_digest
from .test_golden_results import SCENARIOS, _build

CHUNK_SIZES = [1, 64, 4096, None]


def _run(table, config, streams, kwargs, engine="array", trace=False):
    tracer = Tracer() if trace else None
    sim = SpalSimulator(table, config=config, trace=tracer)
    digest = result_digest(sim.run(streams, engine=engine, **kwargs))
    return digest, (tracer.events if tracer is not None else None), sim


# -- golden scenarios through streams ----------------------------------------


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("name", SCENARIOS)
def test_golden_streamed_bit_identical(name, chunk_size):
    table, config, streams, kwargs = _build(name)
    base, _, _ = _run(table, config, streams, kwargs)
    table, config, streams, kwargs = _build(name)
    chunked = [
        PacketStream.from_array(s, chunk_size=chunk_size) for s in streams
    ]
    got, _, sim = _run(table, config, chunked, kwargs)
    for key in base:
        assert got[key] == base[key], (
            f"{name} streamed (chunk={chunk_size}) drifted on {key!r}"
        )
    # Streamed runs keep counts only; len() and truthiness still work.
    assert len(sim.completed) + len(sim.dropped_packets) == sum(
        len(s) for s in streams
    )
    with pytest.raises(TypeError, match="counts only"):
        sim.completed[0]


@pytest.mark.parametrize("name", ["ipv4-faults", "ipv6-churn"])
def test_golden_streamed_scalar_materializes(name):
    """The scalar engine accepts streams by materializing them — same
    digest as feeding it the raw arrays."""
    table, config, streams, kwargs = _build(name)
    base, _, _ = _run(table, config, streams, kwargs, engine="scalar")
    table, config, streams, kwargs = _build(name)
    chunked = [PacketStream.from_array(s, chunk_size=64) for s in streams]
    got, _, sim = _run(table, config, chunked, kwargs, engine="scalar")
    assert got == base
    # Materialized path keeps real packet objects.
    assert sim.completed[0].complete_time >= 0


def test_streamed_trace_identical():
    """Tracer event streams — every ingress/hit/miss/fabric record in
    order — survive chunking."""
    table, config, streams, kwargs = _build("ipv4-faults")
    base, ev_base, _ = _run(table, config, streams, kwargs, trace=True)
    table, config, streams, kwargs = _build("ipv4-faults")
    chunked = [PacketStream.from_array(s, chunk_size=7) for s in streams]
    got, ev_got, _ = _run(table, config, chunked, kwargs, trace=True)
    assert got == base
    assert ev_got == ev_base


# -- random chunk boundaries (Hypothesis) ------------------------------------

_PROP_TABLE = random_small_table(120, seed=29, max_length=20)


def _prop_scenario(with_faults, with_churn):
    config = SpalConfig(
        n_lcs=3,
        cache=CacheConfig(n_blocks=32, victim_blocks=4),
        replicas=2,
        fe_lookup_cycles=5,
    )
    kwargs = {"warmup_packets": 10}
    if with_faults:
        kwargs["faults"] = (
            FaultSchedule(seed=5)
            .fail_lc(300, 1)
            .recover_lc(1800, 1)
            .degrade_fabric(200, 1200, extra_latency=1, drop_prob=0.1)
        )
    if with_churn:
        kwargs["updates"] = generate_churn(
            _PROP_TABLE, rate_per_s=5_000_000, horizon_cycles=3000, seed=9
        )
        kwargs["update_policy"] = "selective"
    return config, kwargs


def _cut_stream(dests: np.ndarray, cuts: list) -> PacketStream:
    """A stream over ``dests`` with arbitrary (irregular) chunk
    boundaries, including empty chunks."""
    bounds = sorted({c for c in cuts if 0 <= c <= len(dests)})
    edges = [0] + bounds + [len(dests)]

    def factory():
        for lo, hi in zip(edges, edges[1:]):
            yield dests[lo:hi]

    return PacketStream(len(dests), factory)


@given(data=st.data())
@settings(max_examples=20, deadline=None)
def test_random_chunk_boundaries_bit_identical(data):
    with_faults = data.draw(st.booleans(), label="faults")
    with_churn = data.draw(st.booleans(), label="churn")
    seed = data.draw(st.integers(0, 1000), label="seed")
    n = data.draw(st.integers(30, 160), label="n_packets")

    rng = np.random.default_rng(seed)
    raw = [
        rng.integers(0, 200, size=n).astype(np.uint64) for _ in range(3)
    ]

    config, kwargs = _prop_scenario(with_faults, with_churn)
    base, ev_base, _ = _run(
        _PROP_TABLE, config, [s.copy() for s in raw], kwargs, trace=True
    )

    cuts = [
        data.draw(
            st.lists(st.integers(0, n), max_size=8), label=f"cuts[{lc}]"
        )
        for lc in range(3)
    ]
    config, kwargs = _prop_scenario(with_faults, with_churn)
    streams = [_cut_stream(s, c) for s, c in zip(raw, cuts)]
    got, ev_got, _ = _run(_PROP_TABLE, config, streams, kwargs, trace=True)

    assert got == base
    assert ev_got == ev_base


# -- stream primitives -------------------------------------------------------


def test_arrival_clock_matches_one_shot():
    for speed in (10, 40):
        want = arrival_times(1000, speed_gbps=speed, seed=77)
        clock = ArrivalClock(speed, seed=77)
        parts = [clock.next(n) for n in (0, 1, 7, 250, 742)]
        np.testing.assert_array_equal(np.concatenate(parts), want)
        assert clock.emitted == 1000


def test_stream_underproduction_raises():
    s = PacketStream(10, lambda: iter([np.arange(4, dtype=np.uint64)]))
    sim = SpalSimulator(_PROP_TABLE, config=SpalConfig(n_lcs=1))
    with pytest.raises(SimulationError, match="declared 10 .* produced 4"):
        sim.run([s], engine="array")


def test_stream_overproduction_raises():
    s = PacketStream(3, lambda: iter([np.arange(9, dtype=np.uint64)]))
    sim = SpalSimulator(_PROP_TABLE, config=SpalConfig(n_lcs=1))
    with pytest.raises(SimulationError, match="declared 3"):
        sim.run([s], engine="array")


def test_stream_validation():
    with pytest.raises(SimulationError, match="non-negative"):
        PacketStream(-1, lambda: iter([]))
    with pytest.raises(SimulationError, match="positive"):
        PacketStream.from_array([1, 2], chunk_size=0)
    with pytest.raises(SimulationError, match="positive"):
        PacketStream.from_generator(4, lambda lo, n: np.zeros(n), 0)
    with pytest.raises(SimulationError, match="widths 1..64"):
        random_stream(4, width=128)


def test_materialize_round_trip():
    dests = np.arange(1000, dtype=np.uint64)
    for cs in (1, 17, None):
        s = PacketStream.from_array(dests, chunk_size=cs)
        np.testing.assert_array_equal(s.materialize(), dests)
        # Streams are reusable: a second pass yields the same data.
        np.testing.assert_array_equal(s.materialize(), dests)


def test_from_array_preserves_ipv6_object_dtype():
    dests = np.array([(0x2001 << 112) | i for i in range(5)], dtype=object)
    s = PacketStream.from_array(dests, chunk_size=2)
    out = s.materialize()
    assert out.dtype == object
    assert out[0] == (0x2001 << 112)


def test_random_stream_consumption_order_independent():
    s = random_stream(3 * DEFAULT_CHUNK // 2, width=32, seed=3)
    full = s.materialize()
    it = s.chunks()
    first = next(it)
    np.testing.assert_array_equal(first, full[: len(first)])
    # A fresh pass is unaffected by the half-consumed iterator above.
    np.testing.assert_array_equal(s.materialize(), full)
