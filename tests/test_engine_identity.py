"""Differential suite: the array engine is bit-identical to the scalar loop.

The array-time engine (``repro.sim.array_engine``) replays the scalar
event timeline over packed state; its determinism contract says every
observable — ``SimulationResult`` field, metrics snapshot, trace stream,
post-run cache/queue state — matches the scalar loop exactly, including
under fault injection, live churn and tracing.  This module enforces the
contract two ways:

* a Hypothesis test drawing random (table, ψ, cache geometry, fault
  schedule, churn schedule, stream seed) configurations, and
* a curated deterministic scenario matrix covering the corners the
  random draw reaches rarely (IPv6, no-cache, unpartitioned, per-LC
  speeds, bus fabric, victim caches, every update policy).

Both run each configuration through ``engine="scalar"`` and
``engine="array"`` and diff the full result digest.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CacheConfig, FaultSchedule, SpalConfig
from repro.obs import Tracer
from repro.routing import random_small_table
from repro.routing.churn import generate_churn
from repro.sim import SpalSimulator

from .conftest import result_digest

TABLE = random_small_table(60, seed=91, max_length=16)
TABLE_WIDE = random_small_table(250, seed=5, max_length=24)
TABLE_V6 = random_small_table(40, seed=17, max_length=48, width=128)


def run_both(table, config, run_kwargs=None, sim_kwargs=None,
             streams=None, trace=False, n_packets=300):
    """Run one configuration under both engines; return their digests
    plus (trace events, simulator) pairs for deeper comparisons."""
    run_kwargs = dict(run_kwargs or {})
    sim_kwargs = dict(sim_kwargs or {})
    out = []
    for engine in ("scalar", "array"):
        if streams is None:
            rng = np.random.default_rng(5)
            eng_streams = [
                rng.integers(0, 1 << 16, size=n_packets).astype(np.uint64)
                for _ in range(config.n_lcs)
            ]
        else:
            eng_streams = [np.array(s, copy=True) for s in streams]
        tracer = Tracer() if trace else None
        sim = SpalSimulator(table, config=config, trace=tracer, **sim_kwargs)
        result = sim.run(eng_streams, engine=engine, **run_kwargs)
        events = tracer.events if tracer is not None else None
        out.append((result_digest(result), events, sim))
    return out


def assert_engines_identical(table, config, run_kwargs=None,
                             sim_kwargs=None, streams=None, trace=False,
                             n_packets=300):
    (d_s, ev_s, sim_s), (d_a, ev_a, sim_a) = run_both(
        table, config, run_kwargs, sim_kwargs, streams, trace, n_packets
    )
    for key in d_s:
        assert d_s[key] == d_a[key], f"engines disagree on {key!r}"
    if trace:
        assert ev_s == ev_a, "trace streams differ"
    # Post-run introspection parity: packet views and queue bookkeeping.
    view_s = [(p.dest, p.arrival_time, p.complete_time, p.served,
               p.measured, p.attempt) for p in sim_s.completed]
    view_a = [(p.dest, p.arrival_time, p.complete_time, p.served,
               p.measured, p.attempt) for p in sim_a.completed]
    assert view_s == view_a
    assert [(p.dest, p.dropped) for p in sim_s.dropped_packets] == \
        [(p.dest, p.dropped) for p in sim_a.dropped_packets]
    assert (sim_s.queue.now, sim_s.queue.processed) == \
        (sim_a.queue.now, sim_a.queue.processed)
    # Resident cache state (the arrays were written back into the caches).
    for ca, cb in zip(sim_s.caches, sim_a.caches):
        if ca is None:
            continue
        flat = lambda c: [
            [(a, e.next_hop, e.mix, e.waiting, e.last_used, e.inserted)
             for a, e in s.items()]
            for s in c._sets
        ]
        assert flat(ca) == flat(cb)
        assert vars(ca.stats) == vars(cb.stats)


# -- random configurations ---------------------------------------------------


@st.composite
def scenarios(draw):
    n_lcs = draw(st.integers(2, 4))
    if draw(st.booleans()):
        cache = None
    else:
        cache = CacheConfig(
            n_blocks=draw(st.sampled_from([16, 32, 64, 128])),
            victim_blocks=draw(st.sampled_from([0, 4])),
            policy=draw(st.sampled_from(["lru", "fifo", "random"])),
            index=draw(st.sampled_from(["mod", "xor"])),
        )
    config = SpalConfig(
        n_lcs=n_lcs,
        cache=cache,
        replicas=draw(st.sampled_from([1, 2])),
        fe_lookup_cycles=draw(st.sampled_from([1, 5])),
    )
    if draw(st.booleans()):
        # Bounded queues: small caps so the shed paths actually fire.
        config = SpalConfig(
            n_lcs=config.n_lcs,
            cache=config.cache,
            replicas=config.replicas,
            fe_lookup_cycles=config.fe_lookup_cycles,
            fe_queue_capacity=draw(st.sampled_from([None, 1, 2, 4])),
            fabric_queue_capacity=draw(st.sampled_from([None, 2, 4, 8])),
            shed_policy=draw(st.sampled_from(["tail_drop", "red", "priority"])),
            shed_seed=draw(st.integers(0, 20)),
        )
    seed = draw(st.integers(0, 10_000))
    n_packets = draw(st.integers(40, 250))
    faults = None
    if draw(st.booleans()):
        lc = draw(st.integers(0, n_lcs - 1))
        fail = draw(st.integers(0, 1200))
        faults = FaultSchedule(seed=draw(st.integers(0, 50)))
        faults.fail_lc(fail, lc)
        faults.recover_lc(fail + draw(st.integers(1, 2500)), lc)
        if draw(st.booleans()):
            start = draw(st.integers(0, 1500))
            faults.degrade_fabric(
                start, start + draw(st.integers(1, 1200)),
                extra_latency=draw(st.integers(0, 4)),
                drop_prob=draw(st.sampled_from([0.0, 0.1, 0.3])),
            )
        if draw(st.booleans()):
            # Gray failures: slow FEs, flapping links, degraded caches.
            start = draw(st.integers(0, 1000))
            faults.slow_lc(
                start, start + draw(st.integers(1, 2000)),
                lc=draw(st.integers(0, n_lcs - 1)),
                multiplier=draw(st.sampled_from([1.5, 2.0, 4.0])),
            )
            start = draw(st.integers(0, 1000))
            faults.flap_link(
                start, start + draw(st.integers(1, 2000)),
                period=draw(st.sampled_from([64, 256])),
                down_cycles=draw(st.sampled_from([16, 64])),
            )
            if config.cache is not None:
                start = draw(st.integers(0, 1000))
                faults.degrade_lc_cache(
                    start, start + draw(st.integers(1, 2000)),
                    lc=draw(st.integers(0, n_lcs - 1)),
                    miss_fraction=draw(st.sampled_from([0.2, 0.5])),
                )
    updates = None
    update_policy = "selective"
    if cache is not None and draw(st.booleans()):
        updates = generate_churn(
            TABLE, rate_per_s=draw(st.sampled_from([1, 3, 8])) * 1_000_000,
            horizon_cycles=4000, seed=draw(st.integers(0, 50)),
        )
        update_policy = draw(st.sampled_from(["flush", "selective", "rem"]))
    warmup = draw(st.sampled_from([0, 0, 25]))
    trace = draw(st.booleans())
    return (config, seed, n_packets, faults, updates, update_policy,
            warmup, trace)


class TestRandomizedIdentity:
    @given(scenarios())
    @settings(max_examples=30, deadline=None)
    def test_engines_bit_identical(self, scenario):
        (config, seed, n_packets, faults, updates, update_policy,
         warmup, trace) = scenario
        rng = np.random.default_rng(seed)
        streams = [
            rng.integers(0, 1 << 16, size=n_packets).astype(np.uint64)
            for _ in range(config.n_lcs)
        ]
        run_kwargs = {"warmup_packets": warmup}
        if faults is not None:
            run_kwargs["faults"] = faults
        if updates is not None:
            run_kwargs["updates"] = updates
            run_kwargs["update_policy"] = update_policy
        assert_engines_identical(
            TABLE, config, run_kwargs, streams=streams, trace=trace
        )


# -- curated corners ---------------------------------------------------------

FAULTS = (
    FaultSchedule(seed=7)
    .fail_lc(500, 1)
    .recover_lc(2500, 1)
    .degrade_fabric(800, 1600, extra_latency=3, drop_prob=0.2)
)

GRAY = (
    FaultSchedule(seed=19)
    .slow_lc(200, 2500, lc=1, multiplier=2.0)
    .flap_link(400, 2000, period=128, down_cycles=32)
    .degrade_lc_cache(300, 2200, lc=0, miss_fraction=0.4)
)


def bounded(policy, fe_cap=2, fab_cap=4):
    return SpalConfig(
        n_lcs=3,
        cache=CacheConfig(n_blocks=64, victim_blocks=4),
        replicas=2,
        fe_lookup_cycles=5,
        fe_queue_capacity=fe_cap,
        fabric_queue_capacity=fab_cap,
        shed_policy=policy,
        shed_seed=3,
    )


def churn(policy):
    return {
        "updates": generate_churn(
            TABLE, rate_per_s=5_000_000, horizon_cycles=5000, seed=13
        ),
        "update_policy": policy,
    }


CASES = {
    "clean-traced": (
        SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=64, victim_blocks=4)),
        {}, {}, True,
    ),
    "faults-traced": (
        SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=64), replicas=2),
        {"faults": FAULTS}, {}, True,
    ),
    "churn-rem": (
        SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=64, victim_blocks=4)),
        churn("rem"), {}, True,
    ),
    "churn-flush": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=32)),
        churn("flush"), {}, False,
    ),
    "faults+churn": (
        SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=64, victim_blocks=4),
                   replicas=2),
        {"faults": FAULTS, **churn("selective")}, {}, True,
    ),
    "no-cache": (
        SpalConfig(n_lcs=3, cache=None), {}, {}, False,
    ),
    "unpartitioned": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64)),
        {}, {"partitioned": False}, False,
    ),
    "fifo-xor-victim": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=32, policy="fifo",
                                              index="xor", victim_blocks=4)),
        {}, {}, False,
    ),
    "random-policy": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=32, policy="random",
                                              victim_blocks=4)),
        {}, {}, False,
    ),
    "flush-cycles": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64)),
        {"flush_cycles": [700, 1500]}, {}, False,
    ),
    "warmup-verify": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64)),
        {"warmup_packets": 50}, {"verify": True}, False,
    ),
    "per-lc-speeds": (
        SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64)),
        {"speed_gbps": [10, 40]}, {}, False,
    ),
    "bus-fabric": (
        SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=64), fabric="bus"),
        {}, {}, True,
    ),
    "early-recording-off": (
        SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=64),
                   early_recording=False),
        {}, {}, False,
    ),
    "remote-caching-off": (
        SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=64),
                   cache_remote_results=False),
        {}, {}, False,
    ),
    "bounded-tail": (bounded("tail_drop"), {}, {}, True),
    "bounded-red": (bounded("red"), {}, {}, False),
    "bounded-priority": (bounded("priority"), {}, {}, False),
    "gray-failures": (
        SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=64, victim_blocks=4),
                   replicas=2, fe_lookup_cycles=5),
        {"faults": GRAY}, {}, True,
    ),
    "bounded+gray+churn": (
        bounded("red", fe_cap=3, fab_cap=6),
        {"faults": GRAY, **churn("selective")}, {}, True,
    ),
}


class TestCuratedIdentity:
    @pytest.mark.parametrize("case", sorted(CASES))
    def test_scenario(self, case):
        config, run_kwargs, sim_kwargs, trace = CASES[case]
        # speed_gbps is a run() argument, not a per-case stream change.
        assert_engines_identical(
            TABLE, config, run_kwargs, sim_kwargs, trace=trace
        )

    def test_wide_table(self):
        assert_engines_identical(
            TABLE_WIDE,
            SpalConfig(n_lcs=3, cache=CacheConfig(n_blocks=128)),
            trace=False,
        )

    def test_ipv6(self):
        rng = np.random.default_rng(9)
        streams = [
            np.array([(0x2001 << 112) | int(x)
                      for x in rng.integers(0, 1 << 16, size=150)],
                     dtype=object)
            for _ in range(2)
        ]
        assert_engines_identical(
            TABLE_V6,
            SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64,
                                                  victim_blocks=4)),
            streams=streams, trace=True,
        )


# -- telemetry sampler on/off ------------------------------------------------

SAMPLED_CASES = ("clean-traced", "no-cache", "gray-failures",
                 "bounded-tail", "bounded+gray+churn")


class TestSamplerIdentity:
    """Enabling ``sample_interval_cycles`` must not change any core
    result field, metric or trace event — per engine — and the sampled
    run's series must be self-consistent (window totals equal the run
    totals).  The series itself may differ *between* engines (window
    attribution is quantized to each engine's loop granularity), so the
    cross-engine comparison pops it before diffing.
    """

    @pytest.mark.parametrize("case", SAMPLED_CASES)
    def test_sampler_on_off(self, case):
        config, run_kwargs, sim_kwargs, trace = CASES[case]
        sampled = dataclasses.replace(config, sample_interval_cycles=256)
        off = run_both(TABLE, config, run_kwargs, sim_kwargs, trace=trace)
        on = run_both(TABLE, sampled, run_kwargs, sim_kwargs, trace=trace)
        for (d_off, ev_off, _), (d_on, ev_on, sim_on) in zip(off, on):
            ts = d_on.pop("timeseries")
            assert d_off.pop("timeseries") is None
            assert ts is not None and len(ts["columns"]["t_end"]) > 0
            for key in d_off:
                assert d_off[key] == d_on[key], f"sampling changed {key!r}"
            if trace:
                assert ev_off == ev_on, "sampling changed the trace stream"
            # Window deltas must re-add to the run totals exactly.
            assert sum(ts["columns"]["completed"]) == len(sim_on.completed)
            assert sum(ts["columns"]["dropped"]) == \
                len(sim_on.dropped_packets)
            assert sum(ts["columns"]["lat_count"]) == len(d_on["latencies"])
        # Core fields still agree across engines with sampling on.
        d_scalar, d_array = on[0][0], on[1][0]
        for key in d_scalar:
            assert d_scalar[key] == d_array[key], \
                f"sampled engines disagree on {key!r}"

    def test_sampler_streamed_chunk_independent(self):
        from repro.sim.streaming import PacketStream

        config = SpalConfig(
            n_lcs=3, cache=CacheConfig(n_blocks=64, victim_blocks=4)
        )
        sampled = dataclasses.replace(config, sample_interval_cycles=256)
        rng = np.random.default_rng(5)
        streams = [
            rng.integers(0, 1 << 16, size=300).astype(np.uint64)
            for _ in range(config.n_lcs)
        ]

        def run(cfg, chunk):
            sim = SpalSimulator(TABLE, config=cfg)
            ss = [
                PacketStream.from_array(s, chunk_size=chunk)
                for s in streams
            ]
            return result_digest(sim.run(ss, engine="array"))

        d_off = run(config, 64)
        d_on = run(sampled, 64)
        d_on_whole = run(sampled, None)
        ts = d_on.pop("timeseries")
        assert d_off.pop("timeseries") is None
        assert ts is not None
        for key in d_off:
            assert d_off[key] == d_on[key], f"sampling changed {key!r}"
        # O(windows) memory means the series cannot depend on chunking.
        assert ts == d_on_whole.pop("timeseries"), \
            "series depends on the streaming chunk size"
