"""Tier-1 suite for the PR 9 observability layer: the windowed telemetry
sampler and its :class:`TimeSeries` container, the online
:class:`HealthMonitor` detectors, the run-archive / regression-tracking
helpers (:mod:`repro.obs.runstore`), the bounded-queue drop instants on
the Chrome timeline, and the ``SimulationResult.percentile`` edge cases
the report tooling depends on.

The cross-engine bit-identity of sampled runs is pinned separately in
``test_engine_identity.py``; here the focus is the telemetry layer's own
contracts — window accounting, export formats (strict OpenMetrics line
checks, JSONL round trips), detector semantics, and the history gate.
"""

from __future__ import annotations

import dataclasses
import json
import re

import numpy as np
import pytest

from repro.core.config import CacheConfig, SpalConfig
from repro.core.faults import FaultSchedule
from repro.errors import ObservabilityError, SimulationError
from repro.obs import (
    DROP_REASONS,
    HealthEvent,
    HealthMonitor,
    RunManifest,
    TimeSeries,
    TimeSeriesSampler,
    Tracer,
    append_history,
    baseline_for,
    check_regression,
    load_history,
    load_manifest,
    render_diff,
    sparkline,
    write_manifest,
)
from repro.obs.timeline import chrome_trace, validate_chrome_trace
from repro.obs.timeseries import PER_LC_COLUMNS, SCALAR_COLUMNS
from repro.routing import random_small_table
from repro.sim.results import SimulationResult
from repro.sim.spal_sim import SpalSimulator


# -- helpers -----------------------------------------------------------------


class FakeEngine:
    """A hand-cranked cumulative-counter state for sampler unit tests."""

    def __init__(self, n_lcs: int = 2):
        self.n_lcs = n_lcs
        self.completed = 0
        self.dropped = 0
        self.shed = 0
        self.hits = 0
        self.lookups = 0
        self.fe_busy = [0] * n_lcs
        self.fe_lookups = [0] * n_lcs
        self.fe_backlog = [0] * n_lcs
        self.fe_backlog_hw = 0
        self.fabric_backlog_hw = 0
        self.pending_latencies: list = []

    def reader(self):
        def read(at_cycle: int):
            new = self.pending_latencies
            self.pending_latencies = []
            return {
                "completed": self.completed,
                "dropped": self.dropped,
                "shed": self.shed,
                "hits": self.hits,
                "lookups": self.lookups,
                "fe_busy": list(self.fe_busy),
                "fe_lookups": list(self.fe_lookups),
                "fe_backlog": list(self.fe_backlog),
                "fe_backlog_hw": self.fe_backlog_hw,
                "fabric_backlog_hw": self.fabric_backlog_hw,
                "new_latencies": new,
            }

        return read


def run_sampled(config, n_lcs=3, n_packets=400, seed=7, engine="scalar",
                monitor=None, faults=None):
    """One small sampled run over random destinations."""
    table = random_small_table(60, seed=91, max_length=16)
    rng = np.random.default_rng(seed)
    # Full-width addresses so every LC's partition (and FE) sees traffic.
    streams = [
        rng.integers(0, 1 << 32, size=n_packets).astype(np.uint64)
        for _ in range(n_lcs)
    ]
    sim = SpalSimulator(table, config=config)
    result = sim.run(streams, engine=engine, monitor=monitor, faults=faults)
    return result, sim


def monitor_window(t_end, *, lookups=1000, hits=900, lat_count=100,
                   lat_p99=20.0, fe_backlog=(0, 0), fe_lookups=(50, 50),
                   fe_service_mean=(40.0, 40.0)):
    """A synthetic closed sampler window for detector unit tests."""
    return {
        "t_start": t_end - 100,
        "t_end": t_end,
        "completed": 100,
        "dropped": 0,
        "shed": 0,
        "hits": hits,
        "lookups": lookups,
        "hit_rate": hits / lookups if lookups else 0.0,
        "lat_count": lat_count,
        "lat_p50": 2.0,
        "lat_p99": lat_p99,
        "fe_backlog_hw": 0,
        "fabric_backlog_hw": 0,
        "fe_backlog": list(fe_backlog),
        "fe_lookups": list(fe_lookups),
        "fe_service_mean": list(fe_service_mean),
    }


# -- strict OpenMetrics line checker (satellite) -----------------------------

_OM_TYPE = re.compile(r"^# TYPE (spal_window_[a-z0-9_]+) gauge$")
_OM_SAMPLE = re.compile(
    r"^(spal_window_[a-z0-9_]+)"
    r'\{window="\d+"(?:,lc="\d+")?\} '
    r"(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)$"
)


def check_openmetrics(text: str) -> None:
    """Strict line-by-line format check of an OpenMetrics exposition:
    every line is a TYPE declaration, a sample with well-formed labels
    and a finite numeric value for a previously declared family, or the
    single terminating ``# EOF``."""
    lines = text.split("\n")
    assert lines[-1] == "", "exposition must end with a newline"
    lines = lines[:-1]
    assert lines[-1] == "# EOF", "exposition must end with '# EOF'"
    declared = set()
    for lineno, line in enumerate(lines[:-1]):
        m = _OM_TYPE.match(line)
        if m:
            assert m.group(1) not in declared, (
                f"line {lineno}: family {m.group(1)} declared twice"
            )
            declared.add(m.group(1))
            continue
        m = _OM_SAMPLE.match(line)
        assert m, f"line {lineno}: malformed OpenMetrics line {line!r}"
        assert m.group(1) in declared, (
            f"line {lineno}: sample before TYPE for {m.group(1)}"
        )
        assert np.isfinite(float(m.group(2)))
    assert "# EOF" not in lines[:-1], "'# EOF' appears before the end"


# -- sampler window accounting ----------------------------------------------


class TestSamplerAccounting:
    def test_interval_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            TimeSeriesSampler(0, 2)
        with pytest.raises(ObservabilityError):
            TimeSeriesSampler(-5, 2)

    def test_double_bind_rejected(self):
        eng = FakeEngine()
        sampler = TimeSeriesSampler(10, 2)
        sampler.bind(eng.reader())
        with pytest.raises(ObservabilityError):
            sampler.bind(eng.reader())

    def test_advance_before_bind_rejected(self):
        sampler = TimeSeriesSampler(10, 2)
        with pytest.raises(ObservabilityError):
            sampler.advance(25)

    def test_windows_are_successive_deltas(self):
        eng = FakeEngine()
        sampler = TimeSeriesSampler(10, 2)
        sampler.bind(eng.reader())
        eng.completed, eng.hits, eng.lookups = 4, 3, 4
        eng.pending_latencies = [5, 6]
        assert sampler.advance(10) == 20
        eng.completed, eng.hits, eng.lookups = 10, 6, 10
        eng.pending_latencies = [7]
        sampler.advance(20)
        series = sampler.finish(19)  # horizon inside the last closed window
        assert len(series) == 2
        assert series["completed"].tolist() == [4, 6]
        assert series["hits"].tolist() == [3, 3]
        assert series["hit_rate"].tolist() == [3 / 4, 3 / 6]
        assert series["lat_count"].tolist() == [2, 1]
        assert series["t_start"].tolist() == [0, 10]
        assert series["t_end"].tolist() == [10, 20]

    def test_multi_boundary_jump_emits_zero_delta_windows(self):
        eng = FakeEngine()
        sampler = TimeSeriesSampler(10, 2)
        sampler.bind(eng.reader())
        eng.completed = 5
        assert sampler.advance(35) == 40
        series = sampler.finish(34)
        # Boundaries 10, 20, 30 all closed; the whole delta lands in the
        # first window, the rest are zero-delta.
        assert series["t_end"].tolist() == [10, 20, 30, 35]
        assert series["completed"].tolist() == [5, 0, 0, 0]

    def test_finish_closes_partial_window_and_is_idempotent(self):
        eng = FakeEngine()
        sampler = TimeSeriesSampler(10, 2)
        sampler.bind(eng.reader())
        eng.completed = 2
        sampler.advance(10)
        eng.completed = 3
        first = sampler.finish(14)
        assert first["t_end"].tolist() == [10, 15]
        assert first["completed"].tolist() == [2, 1]
        eng.completed = 99  # must NOT be re-read after finish
        assert sampler.finish(500) is first

    def test_finish_without_any_boundary(self):
        eng = FakeEngine()
        sampler = TimeSeriesSampler(1000, 2)
        sampler.bind(eng.reader())
        eng.completed = 7
        series = sampler.finish(12)
        assert series["t_end"].tolist() == [13]
        assert series["completed"].tolist() == [7]

    def test_unbound_finish_packs_empty_series(self):
        series = TimeSeriesSampler(10, 3).finish(100)
        assert len(series) == 0
        assert series["fe_backlog"].shape == (0, 3)

    def test_per_lc_service_mean(self):
        eng = FakeEngine(n_lcs=2)
        sampler = TimeSeriesSampler(10, 2)
        sampler.bind(eng.reader())
        eng.fe_busy = [80, 0]
        eng.fe_lookups = [2, 0]
        sampler.advance(10)
        series = sampler.finish(9)
        assert series["fe_service_mean"].tolist() == [[40.0, 0.0]]
        assert series["fe_lookups"].tolist() == [[2, 0]]


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_constant_values_render_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsampling_keeps_spikes(self):
        values = [1.0] * 100
        values[37] = 50.0
        line = sparkline(values, width=10)
        assert len(line) == 10
        assert "█" in line

    def test_series_sparkline_per_lc_and_max(self):
        cols = {name: np.zeros(3) for name in SCALAR_COLUMNS}
        for name in PER_LC_COLUMNS:
            cols[name] = np.array([[0, 9], [0, 9], [0, 9]], dtype=np.int64)
        series = TimeSeries(10, 2, cols)
        assert series.sparkline("fe_backlog", lc=0) == "▁▁▁"
        # max across LCs picks up the busy one
        assert series.sparkline("fe_backlog") == "▁▁▁"
        cols["fe_backlog"] = np.array([[0, 1], [0, 5], [0, 9]])
        assert series.sparkline("fe_backlog")[-1] == "█"


# -- sampled simulation runs -------------------------------------------------


class TestSampledRun:
    CONFIG = SpalConfig(
        n_lcs=3,
        cache=CacheConfig(n_blocks=64, victim_blocks=4),
        sample_interval_cycles=256,
    )

    @pytest.mark.parametrize("bad", [0, -16])
    def test_config_rejects_nonpositive_interval(self, bad):
        # SpalConfig.validate runs at simulator construction.
        table = random_small_table(20, seed=1, max_length=16)
        with pytest.raises(SimulationError):
            SpalSimulator(
                table,
                config=SpalConfig(n_lcs=2, sample_interval_cycles=bad),
            )

    def test_monitor_requires_sampling(self):
        config = SpalConfig(n_lcs=2, cache=None)
        with pytest.raises(SimulationError):
            run_sampled(config, n_lcs=2, n_packets=50,
                        monitor=HealthMonitor())

    @pytest.mark.parametrize("engine", ["scalar", "array"])
    def test_totals_and_window_geometry(self, engine):
        result, _sim = run_sampled(self.CONFIG, engine=engine)
        series = result.timeseries
        assert series is not None and len(series) > 1
        # Column totals equal the run-level counters.
        assert int(series["completed"].sum()) == result.packets
        assert int(series["lat_count"].sum()) == len(result.latencies)
        assert int(series["dropped"].sum()) == result.total_drops
        # Window geometry: contiguous, interval-sized except the last.
        t_start, t_end = series["t_start"], series["t_end"]
        assert t_start[0] == 0
        assert (t_start[1:] == t_end[:-1]).all()
        assert (t_end[:-1] - t_start[:-1] == series.interval).all()
        assert t_end[-1] == result.horizon_cycles + 1
        # Windowed hit rates are rates; backlogs never negative.
        assert ((series["hit_rate"] >= 0) & (series["hit_rate"] <= 1)).all()
        assert (series["fe_backlog"] >= 0).all()

    def test_streamed_chunks_match_run_totals(self):
        from repro.sim.streaming import PacketStream

        table = random_small_table(60, seed=91, max_length=16)
        rng = np.random.default_rng(3)
        streams = [
            PacketStream.from_array(
                rng.integers(0, 1 << 16, size=300).astype(np.uint64),
                chunk_size=64,
            )
            for _ in range(3)
        ]
        sim = SpalSimulator(table, config=self.CONFIG)
        result = sim.run(streams, engine="array")
        series = result.timeseries
        assert series is not None
        assert int(series["completed"].sum()) == result.packets
        assert int(series["lat_count"].sum()) == len(result.latencies)

    def test_jsonl_round_trip(self, tmp_path):
        result, _sim = run_sampled(self.CONFIG, n_packets=200)
        series = result.timeseries
        path = tmp_path / "telemetry.jsonl"
        n = series.to_jsonl(path)
        lines = path.read_text().strip().split("\n")
        assert n == len(series) == len(lines)
        for i, line in enumerate(lines):
            doc = json.loads(line)
            assert doc.pop("window") == i
            assert doc == series.window(i)

    def test_openmetrics_export_is_strictly_well_formed(self, tmp_path):
        result, _sim = run_sampled(self.CONFIG, n_packets=200)
        series = result.timeseries
        text = series.write_openmetrics(tmp_path / "telemetry.om")
        assert (tmp_path / "telemetry.om").read_text() == text
        check_openmetrics(text)
        # Every column family is present with the right sample count.
        n, lcs = len(series), series.n_lcs
        for name in SCALAR_COLUMNS:
            assert text.count(f"spal_window_{name}{{") == n
        for name in PER_LC_COLUMNS:
            assert text.count(f"spal_window_{name}{{") == n * lcs

    def test_openmetrics_checker_rejects_malformed(self):
        check_openmetrics(
            "# TYPE spal_window_completed gauge\n"
            'spal_window_completed{window="0"} 3\n# EOF\n'
        )
        with pytest.raises(AssertionError):
            check_openmetrics('spal_window_x{window="0"} 1\n# EOF\n')
        with pytest.raises(AssertionError):
            check_openmetrics(
                "# TYPE spal_window_x gauge\n"
                'spal_window_x{window=0} 1\n# EOF\n'
            )
        with pytest.raises(AssertionError):
            check_openmetrics(
                "# TYPE spal_window_x gauge\n"
                'spal_window_x{window="0"} 1\n'
            )

    def test_live_monitor_flags_slow_lc_within_two_windows(self):
        """The E22 acceptance contract at unit scale: with sampling on
        and a slow-LC gray failure injected, the attached monitor's
        service_skew detector fires within two sampling windows of the
        fault's onset, naming the right LC."""
        interval = 256
        config = SpalConfig(
            n_lcs=3, cache=None, sample_interval_cycles=interval
        )
        start, end = 1000, 3000
        faults = FaultSchedule(seed=5).slow_lc(
            start, end, lc=1, multiplier=4.0
        )
        monitor = HealthMonitor(skew_threshold=1.5)
        result, _sim = run_sampled(
            config, monitor=monitor, faults=faults
        )
        skew = [e for e in monitor.events if e.detector == "service_skew"]
        assert skew, "service_skew never fired"
        assert skew[0].lc == 1
        assert start <= skew[0].cycle <= start + 2 * interval
        # Offline replay of the stored series reproduces the live events.
        replay = HealthMonitor(skew_threshold=1.5).consume(result.timeseries)
        assert replay == monitor.events


# -- health monitor detectors ------------------------------------------------


def only(detector, **kwargs):
    """A monitor with every detector but one disabled."""
    base = dict(slo_p99_cycles=None, hit_rate_drop=None,
                backlog_threshold=None, skew_threshold=None)
    base.update(kwargs)
    return HealthMonitor(**base)


class TestHealthMonitor:
    def test_bad_params_rejected(self):
        with pytest.raises(ObservabilityError):
            HealthMonitor(window=0)
        with pytest.raises(ObservabilityError):
            HealthMonitor(confirm_windows=0)

    def test_slo_burn_fires_on_burn_fraction_and_rearms(self):
        mon = only("slo_burn", slo_p99_cycles=100.0, window=4,
                   burn_fraction=0.5)
        for t in range(1, 5):
            assert mon.observe(monitor_window(t * 100, lat_p99=50.0)) == []
        # Two hot windows of the rolling four -> rate 0.5 -> fire once.
        assert mon.observe(monitor_window(500, lat_p99=500.0)) == []
        events = mon.observe(monitor_window(600, lat_p99=500.0))
        assert [e.detector for e in events] == ["slo_burn"]
        # Latched while burning: no repeat event.
        assert mon.observe(monitor_window(700, lat_p99=500.0)) == []
        # Cool down until the rolling window clears, then re-arm.
        t = 800
        while mon._active["slo_burn"]:
            mon.observe(monitor_window(t, lat_p99=10.0))
            t += 100
        for _ in range(4):
            mon.observe(monitor_window(t, lat_p99=500.0))
            t += 100
        assert sum(e.detector == "slo_burn" for e in mon.events) == 2

    def test_slo_burn_ignores_empty_latency_windows(self):
        mon = only("slo_burn", slo_p99_cycles=100.0, window=2,
                   burn_fraction=0.5)
        for t in range(1, 6):
            # Huge p99 values but zero measured lookups: not a burn.
            out = mon.observe(
                monitor_window(t * 100, lat_p99=9999.0, lat_count=0)
            )
            assert out == []

    def test_hit_rate_collapse_vs_cumulative_baseline(self):
        mon = only("hit_rate_collapse", hit_rate_drop=0.5, min_lookups=32)
        # First window only seeds the baseline (no judgment possible).
        assert mon.observe(monitor_window(100, hits=900)) == []
        for t in (200, 300):
            assert mon.observe(monitor_window(t, hits=900)) == []
        events = mon.observe(monitor_window(400, hits=300))
        assert [e.detector for e in events] == ["hit_rate_collapse"]
        assert events[0].value == pytest.approx(0.3)

    def test_hit_rate_gates_on_min_lookups(self):
        mon = only("hit_rate_collapse", hit_rate_drop=0.5, min_lookups=32)
        mon.observe(monitor_window(100, hits=900))
        # A collapsed-rate window with too few lookups is not judged.
        assert mon.observe(
            monitor_window(200, lookups=10, hits=0)
        ) == []

    def test_backlog_growth_needs_confirmation_streak(self):
        mon = only("backlog_growth", backlog_threshold=8, confirm_windows=2)
        assert mon.observe(monitor_window(100, fe_backlog=(9, 0))) == []
        events = mon.observe(monitor_window(200, fe_backlog=(12, 0)))
        assert [e.detector for e in events] == ["backlog_growth"]
        assert events[0].lc == 0

    def test_backlog_shrinking_resets_streak(self):
        mon = only("backlog_growth", backlog_threshold=8, confirm_windows=2)
        mon.observe(monitor_window(100, fe_backlog=(9, 0)))
        mon.observe(monitor_window(200, fe_backlog=(7, 0)))   # shrank
        mon.observe(monitor_window(300, fe_backlog=(9, 0)))   # streak = 1
        assert mon.events == []

    def test_service_skew_fires_on_outlier_lc(self):
        mon = only("service_skew", skew_threshold=1.5)
        events = mon.observe(monitor_window(
            100, fe_lookups=(10, 10), fe_service_mean=(160.0, 40.0)
        ))
        assert [e.detector for e in events] == ["service_skew"]
        assert events[0].lc == 0
        assert events[0].value == pytest.approx(4.0)

    def test_service_skew_needs_two_live_lcs(self):
        mon = only("service_skew", skew_threshold=1.5)
        assert mon.observe(monitor_window(
            100, fe_lookups=(10, 0), fe_service_mean=(160.0, 0.0)
        )) == []

    def test_reset_clears_events_and_state(self):
        mon = only("service_skew", skew_threshold=1.5)
        mon.observe(monitor_window(
            100, fe_lookups=(10, 10), fe_service_mean=(160.0, 40.0)
        ))
        assert len(mon.events) == 1
        mon.reset()
        assert mon.events == []
        # Same stimulus fires again from a clean slate.
        mon.observe(monitor_window(
            100, fe_lookups=(10, 10), fe_service_mean=(160.0, 40.0)
        ))
        assert len(mon.events) == 1

    def test_health_event_str_mentions_lc(self):
        event = HealthEvent(cycle=512, detector="service_skew",
                            value=4.0, threshold=1.5, lc=2)
        assert "lc=2" in str(event) and "service_skew" in str(event)


# -- SimulationResult.percentile edge cases (satellite) ----------------------


class TestPercentileEdges:
    def make(self, latencies, **kwargs):
        return SimulationResult(
            name="t", n_lcs=2,
            latencies=np.asarray(latencies, dtype=np.int64),
            horizon_cycles=100, **kwargs,
        )

    def test_empty_latencies(self):
        r = self.make([])
        for q in (0, 50, 99, 99.9, 100):
            assert r.percentile(q) == 0.0
        assert r.mean_lookup_cycles == 0.0
        assert r.max_lookup_cycles == 0

    def test_single_packet(self):
        r = self.make([7])
        for q in (0, 50, 99, 100):
            assert r.percentile(q) == 7.0

    def test_all_dropped_run(self):
        r = self.make([], drops={"queue_full": 5, "shed": 3})
        assert r.percentile(99) == 0.0
        assert r.total_drops == 8
        assert r.delivery_rate == 0.0
        assert r.summary()["p99_cycles"] == 0.0


# -- run store / regression gate ---------------------------------------------


def make_manifest(**overrides):
    base = dict(
        name="headline", engine="array", table_size=20_000, packets=16_000,
        events=18_000, events_per_s=500_000.0, p50=1.0, p99=60.0,
        p999=128.0, peak_rss_mib=150.0, config_digest="abc123",
        git_sha="deadbee", created="20260808T120000Z",
        metrics={"hit_rate": 0.91},
    )
    base.update(overrides)
    return RunManifest(**base)


class TestRunStore:
    def test_manifest_write_load_round_trip(self, tmp_path):
        manifest = make_manifest()
        path = write_manifest(manifest, tmp_path / "runs")
        assert path.parent == tmp_path / "runs"
        assert load_manifest(path) == manifest

    def test_write_never_clobbers(self, tmp_path):
        a = write_manifest(make_manifest(), tmp_path)
        b = write_manifest(make_manifest(), tmp_path)
        assert a != b and a.exists() and b.exists()

    def test_from_dict_ignores_unknown_keys(self):
        doc = make_manifest().to_dict()
        doc["future_field"] = {"x": 1}
        assert RunManifest.from_dict(doc) == make_manifest()

    def test_history_append_and_baseline(self, tmp_path):
        path = tmp_path / "BENCH_history.json"
        assert load_history(path) == []
        append_history(make_manifest(created="A"), path)
        history = append_history(make_manifest(created="B"), path)
        assert len(history) == 2
        assert all("series" not in entry for entry in history)
        baseline = baseline_for(history, "headline")
        assert baseline["created"] == "A"
        assert baseline_for(history, "other") is None

    def test_regression_gate_trips_and_clears(self):
        base = make_manifest().to_dict()
        ok = make_manifest(events_per_s=480_000.0, p99=65.0).to_dict()
        assert check_regression(ok, base, threshold=0.15) == []
        slow = make_manifest(events_per_s=250_000.0, p99=120.0).to_dict()
        failures = check_regression(slow, base, threshold=0.15)
        assert len(failures) == 2
        assert any("events/s" in f for f in failures)
        assert any("p99" in f for f in failures)

    def test_render_diff_fields_and_sparklines(self):
        series = {
            "interval": 256, "n_lcs": 2,
            "columns": {
                "completed": [10, 20, 30], "hit_rate": [0.5, 0.8, 0.9],
                "lat_p99": [40.0, 20.0, 10.0], "dropped": [0, 0, 1],
            },
        }
        a = make_manifest(series=series)
        b = make_manifest(created="20260808T130000Z",
                          events_per_s=550_000.0, series=series)
        text = render_diff(a, b)
        assert "events_per_s" in text and "+10.0%" in text
        assert "hit_rate" in text        # shared metric block
        assert "per-window series" in text
        assert "█" in text               # sparklines rendered
        # No series on either side -> no sparkline section.
        assert "per-window series" not in render_diff(
            make_manifest(), make_manifest()
        )


# -- chrome-timeline drop instants (satellite) -------------------------------


class TestDropInstants:
    def test_drop_reasons_cover_bounded_queue_kinds(self):
        assert {"queue_full", "shed", "ingress", "crash",
                "unreachable"} <= DROP_REASONS

    def make_tracer(self, reason):
        tracer = Tracer()
        tracer.record("ingress", 0, lc=1, pid=7, dest=42)
        tracer.record("drop", 10, lc=1, pid=7, reason=reason)
        return tracer

    @pytest.mark.parametrize("reason", ["queue_full", "shed"])
    def test_bounded_queue_drops_become_instants(self, reason):
        doc = chrome_trace(self.make_tracer(reason))
        validate_chrome_trace(doc)
        instants = [e for e in doc["traceEvents"]
                    if e.get("ph") == "i" and e.get("cat") == "drop"]
        assert len(instants) == 1
        assert instants[0]["name"] == f"drop.{reason}"
        assert instants[0]["tid"] == 1
        assert instants[0]["args"]["packet"] == 7

    def test_other_drop_reasons_stay_span_only(self):
        doc = chrome_trace(self.make_tracer("crash"))
        validate_chrome_trace(doc)
        assert not any(
            e.get("cat") == "drop" for e in doc["traceEvents"]
        )

    def test_validator_rejects_unknown_instants(self):
        doc = chrome_trace(self.make_tracer("queue_full"))
        for event in doc["traceEvents"]:
            if event.get("cat") == "drop":
                event["name"] = "drop.bogus"
        with pytest.raises(ObservabilityError):
            validate_chrome_trace(doc)

    def test_validator_rejects_bad_instant_scope(self):
        doc = chrome_trace(self.make_tracer("shed"))
        for event in doc["traceEvents"]:
            if event.get("cat") == "drop":
                event["s"] = "X"
        with pytest.raises(ObservabilityError):
            validate_chrome_trace(doc)
