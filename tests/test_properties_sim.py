"""Property-based tests for the simulator: conservation and causality."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import CacheConfig, FaultSchedule, SpalConfig
from repro.obs import Tracer
from repro.routing import random_small_table
from repro.sim import SpalSimulator


@st.composite
def sim_configs(draw):
    n_lcs = draw(st.sampled_from([1, 2, 3, 4]))
    cache = draw(
        st.one_of(
            st.none(),
            st.builds(
                CacheConfig,
                n_blocks=st.sampled_from([16, 64, 256]),
                mix=st.sampled_from([0.0, 0.25, 0.5, 1.0]),
                victim_blocks=st.sampled_from([0, 4]),
            ),
        )
    )
    return SpalConfig(
        n_lcs=n_lcs,
        cache=cache,
        fe_lookup_cycles=draw(st.sampled_from([5, 40])),
        early_recording=draw(st.booleans()),
        cache_remote_results=draw(st.booleans()),
        fabric=draw(st.sampled_from(["ideal", "bus", "crossbar"])),
    )


@st.composite
def small_streams(draw, n_lcs):
    n = draw(st.integers(1, 120))
    seed = draw(st.integers(0, 1000))
    rng = np.random.default_rng(seed)
    # Small destination alphabet maximizes waiting-list and cache churn.
    return [
        rng.integers(0, 1 << 16, size=n).astype(np.uint64)
        for _ in range(n_lcs)
    ]


TABLE = random_small_table(60, seed=91, max_length=16)


class TestConservation:
    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_every_packet_completes_with_positive_latency(self, data):
        config = data.draw(sim_configs())
        streams = data.draw(small_streams(config.n_lcs))
        sim = SpalSimulator(TABLE, config)
        result = sim.run(streams)
        assert result.packets == sum(len(s) for s in streams)
        assert (result.latencies >= 1).all()

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_flushes_never_lose_packets(self, data):
        config = data.draw(sim_configs())
        streams = data.draw(small_streams(config.n_lcs))
        flushes = data.draw(
            st.lists(st.integers(1, 2000), min_size=1, max_size=10)
        )
        sim = SpalSimulator(TABLE, config)
        result = sim.run(streams, flush_cycles=sorted(flushes))
        assert result.packets == sum(len(s) for s in streams)

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_fe_lookups_bounded_by_misses(self, data):
        """FE work can never exceed one lookup per packet (the caches and
        waiting lists only ever merge work, never amplify it)."""
        config = data.draw(sim_configs())
        streams = data.draw(small_streams(config.n_lcs))
        sim = SpalSimulator(TABLE, config)
        result = sim.run(streams)
        assert sum(result.fe_lookups) <= result.packets

    @given(st.data())
    @settings(max_examples=30, deadline=None)
    def test_cache_only_mode_never_uses_fabric(self, data):
        config = data.draw(sim_configs())
        streams = data.draw(small_streams(config.n_lcs))
        sim = SpalSimulator(TABLE, config, partitioned=False)
        result = sim.run(streams)
        assert result.fabric_messages == 0


def _result_fields(r):
    """Every SimulationResult field, hashable-comparable (observability
    contract: tracing must not change a single one of these)."""
    return (
        r.name,
        r.n_lcs,
        r.latencies.tobytes(),
        r.horizon_cycles,
        r.cache_stats,
        r.fe_lookups,
        r.fe_utilization,
        r.fabric_messages,
        r.flushes,
        r.extra,
        r.drops,
        r.retries,
        r.fabric_dropped_messages,
        r.fault_events,
        r.lc_availability,
        r.failover_packets,
        r.failover_mean_cycles,
        r.metrics_snapshot,
    )


class TestTracingInvariance:
    """Tracing is observation only: a traced run, a run with a disabled
    tracer, and an untraced run produce bit-identical results — with the
    batch fast path on or off, with and without fault injection."""

    @given(st.data())
    @settings(max_examples=20, deadline=None)
    def test_tracing_never_changes_any_result_field(
        self, fast_path_toggle, data
    ):
        config = data.draw(sim_configs())
        streams = data.draw(small_streams(config.n_lcs))
        batch = data.draw(st.booleans())
        faults = None
        if config.n_lcs > 1 and data.draw(st.booleans()):
            lc = data.draw(st.integers(0, config.n_lcs - 1))
            fail = data.draw(st.integers(0, 1500))
            recover = fail + data.draw(st.integers(1, 2000))
            faults = FaultSchedule(seed=7).fail_lc(fail, lc).recover_lc(
                recover, lc
            )
        with fast_path_toggle(batch):
            def run(trace):
                sim = SpalSimulator(TABLE, config, trace=trace)
                return sim.run(
                    [s.copy() for s in streams], faults=faults, name="t"
                )

            plain = run(None)
            disabled = run(Tracer(enabled=False))
            traced = run(Tracer())
        for other in (disabled, traced):
            assert _result_fields(other) == _result_fields(plain)
