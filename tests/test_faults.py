"""Fault injection, remote-lookup timeouts, and failover."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CacheConfig,
    FaultSchedule,
    LineCard,
    SpalConfig,
    SpalRouter,
)
from repro.core.partition import partition_table
from repro.errors import (
    FaultScheduleError,
    LookupTimeoutError,
    PartitionError,
    SimulationError,
    UnreachablePatternError,
)
from repro.routing import random_small_table
from repro.routing.churn import generate_churn
from repro.routing.ipv6 import make_ipv6_table
from repro.sim import SpalSimulator
from repro.tries.lulea import LuleaTrie


@pytest.fixture(scope="module")
def table():
    return random_small_table(120, seed=17, max_length=20)


def small_config(n_lcs=4, replicas=2, **kw):
    return SpalConfig(
        n_lcs=n_lcs,
        cache=CacheConfig(n_blocks=64, victim_blocks=4),
        fe_lookup_cycles=5,
        replicas=replicas,
        **kw,
    )


def locality_streams(n_lcs, n=400, seed=3, alphabet=1 << 14):
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, alphabet, size=n).astype(np.uint64)
        for _ in range(n_lcs)
    ]


def run_once(table, config, streams, faults=None, speed_gbps=40):
    return SpalSimulator(table, config).run(
        streams, faults=faults, speed_gbps=speed_gbps, name="t"
    )


class TestFaultSchedule:
    def test_builders_chain_and_validate(self):
        f = (
            FaultSchedule(seed=4)
            .fail_lc(100, 1)
            .recover_lc(200, 1)
            .degrade_fabric(50, 150, extra_latency=3, drop_prob=0.1)
        )
        assert not f.empty
        assert f.has_lc_events and f.has_drops
        assert f.lc_events() == [(100, "fail", 1), (200, "recover", 1)]

    def test_same_cycle_fail_before_recover(self):
        f = FaultSchedule().recover_lc(100, 2).fail_lc(100, 2)
        assert [k for _, k, _ in f.lc_events()] == ["fail", "recover"]

    @pytest.mark.parametrize(
        "call",
        [
            lambda f: f.fail_lc(-1, 0),
            lambda f: f.fail_lc(10, -2),
            lambda f: f.recover_lc(-5, 0),
            lambda f: f.degrade_fabric(10, 10),
            lambda f: f.degrade_fabric(20, 10),
            lambda f: f.degrade_fabric(0, 10, extra_latency=-1),
            lambda f: f.degrade_fabric(0, 10, drop_prob=1.0),
            lambda f: f.degrade_fabric(0, 10, drop_prob=-0.1),
            lambda f: f.slow_lc(10, 10, 0, 2.0),
            lambda f: f.slow_lc(0, 10, -1, 2.0),
            lambda f: f.slow_lc(0, 10, 0, 0.5),
            lambda f: f.flap_link(0, 10, period=0, down_cycles=1),
            lambda f: f.flap_link(0, 10, period=4, down_cycles=5),
            lambda f: f.flap_link(0, 10, period=4, down_cycles=0),
            lambda f: f.flap_link(0, 10, period=4, down_cycles=2, src=-1),
            lambda f: f.degrade_lc_cache(10, 5, 0, 0.5),
            lambda f: f.degrade_lc_cache(0, 10, 0, 0.0),
            lambda f: f.degrade_lc_cache(0, 10, 0, 1.0),
        ],
    )
    def test_malformed_events_raise(self, call):
        with pytest.raises(FaultScheduleError):
            call(FaultSchedule())

    def test_validate_against_router_shape(self):
        f = FaultSchedule().fail_lc(10, 7)
        f.validate(8)  # in range
        with pytest.raises(FaultScheduleError):
            f.validate(4)

    def test_drop_prob_composes_independent_windows(self):
        f = (
            FaultSchedule()
            .degrade_fabric(0, 100, drop_prob=0.5)
            .degrade_fabric(50, 100, drop_prob=0.5)
        )
        assert f.drop_prob_at(10) == 0.5
        assert f.drop_prob_at(60) == pytest.approx(0.75)
        assert f.drop_prob_at(100) == 0.0


class TestDeterminism:
    def test_empty_schedule_bit_identical_to_no_schedule(self, table):
        cfg = small_config()
        streams = locality_streams(4)
        base = run_once(table, cfg, streams)
        empty = run_once(table, cfg, streams, faults=FaultSchedule())
        assert np.array_equal(base.latencies, empty.latencies)
        assert base.horizon_cycles == empty.horizon_cycles
        assert base.summary() == empty.summary()
        # Fault-free runs keep the degraded-mode defaults untouched.
        assert empty.drops == {} and empty.lc_availability == []

    def test_fault_run_repeatable(self, table):
        cfg = small_config()
        streams = locality_streams(4)
        faults = [
            FaultSchedule(seed=7)
            .fail_lc(500, 1)
            .recover_lc(4000, 1)
            .degrade_fabric(200, 2500, extra_latency=4, drop_prob=0.2)
            for _ in range(2)
        ]
        a = run_once(table, cfg, streams, faults=faults[0])
        b = run_once(table, cfg, streams, faults=faults[1])
        assert np.array_equal(a.latencies, b.latencies)
        assert a.drops == b.drops
        assert a.retries == b.retries
        assert a.fabric_dropped_messages == b.fabric_dropped_messages
        assert a.horizon_cycles == b.horizon_cycles
        assert a.lc_availability == b.lc_availability

    def test_fault_run_identical_with_fast_path_off(self, table, monkeypatch):
        cfg = small_config()
        streams = locality_streams(4)
        faults = lambda: (
            FaultSchedule(seed=2)
            .fail_lc(800, 2)
            .recover_lc(5000, 2)
            .degrade_fabric(100, 3000, extra_latency=2, drop_prob=0.15)
        )
        on = run_once(table, cfg, streams, faults=faults())
        monkeypatch.setenv("REPRO_BATCH", "0")
        off = run_once(table, cfg, streams, faults=faults())
        assert np.array_equal(on.latencies, off.latencies)
        assert on.drops == off.drops
        assert on.retries == off.retries
        assert on.fabric_dropped_messages == off.fabric_dropped_messages
        assert on.horizon_cycles == off.horizon_cycles


class TestFailover:
    def test_replicated_failure_no_unreachable_drops(self, table):
        cfg = small_config(replicas=2)
        streams = locality_streams(4)
        faults = FaultSchedule().fail_lc(1000, 1)
        # 10 Gbps: failover needs capacity headroom on the survivors — at
        # saturation, congestion timeouts can exhaust the retry budget.
        r = run_once(table, cfg, streams, faults=faults, speed_gbps=10)
        assert r.drops["unreachable"] == 0
        # The dead card's own offered traffic is lost at ingress.
        assert r.drops["ingress"] > 0
        assert r.lc_availability[1] < 1.0
        assert all(a == 1.0 for i, a in enumerate(r.lc_availability) if i != 1)

    def test_unreplicated_failure_counted_never_raised(self, table):
        cfg = small_config(replicas=1)
        streams = locality_streams(4)
        faults = FaultSchedule().fail_lc(500, 1)
        r = run_once(table, cfg, streams, faults=faults)  # must not raise
        assert r.drops["unreachable"] > 0
        assert r.delivery_rate < 1.0
        assert r.packets + r.total_drops == sum(len(s) for s in streams)

    def test_on_unreachable_raise_policy(self, table):
        cfg = small_config(replicas=1, on_unreachable="raise")
        streams = locality_streams(4)
        faults = FaultSchedule().fail_lc(500, 1)
        with pytest.raises((UnreachablePatternError, LookupTimeoutError)):
            run_once(table, cfg, streams, faults=faults)

    def test_recovery_restores_service_with_cold_cache(self, table):
        cfg = small_config(replicas=1)
        streams = locality_streams(4, n=600)
        sim = SpalSimulator(table, cfg)
        faults = FaultSchedule().fail_lc(1000, 1).recover_lc(3000, 1)
        r = sim.run(streams, faults=faults, name="t")
        # Cold restart: the recovered card's cache was flushed.
        assert sim.caches[1].stats.flushes >= 1
        # Down window is exactly fail..recover.
        horizon = r.horizon_cycles
        assert r.lc_availability[1] == pytest.approx(1 - 2000 / horizon)

    def test_conservation_under_heavy_faults(self, table):
        cfg = small_config(replicas=2)
        streams = locality_streams(4, n=500, seed=11)
        faults = (
            FaultSchedule(seed=3)
            .fail_lc(300, 0)
            .fail_lc(600, 2)
            .recover_lc(2500, 0)
            .recover_lc(4000, 2)
            .degrade_fabric(100, 5000, extra_latency=5, drop_prob=0.3)
        )
        r = run_once(table, cfg, streams, faults=faults)
        assert r.packets + r.total_drops == sum(len(s) for s in streams)

    def test_retries_recover_from_fabric_loss(self, table):
        cfg = small_config(replicas=2)
        streams = locality_streams(4)
        faults = FaultSchedule(seed=6).degrade_fabric(0, 10**9, drop_prob=0.2)
        r = run_once(table, cfg, streams, faults=faults)
        assert r.fabric_dropped_messages > 0
        assert r.retries > 0
        # Lost messages recovered by retry show up as failover packets.
        assert r.failover_packets > 0

    def test_degradation_latency_slows_remote_lookups(self, table):
        cfg = small_config(replicas=1)
        streams = locality_streams(4)
        base = run_once(table, cfg, streams)
        slow = run_once(
            table,
            cfg,
            streams,
            faults=FaultSchedule().degrade_fabric(
                0, 10**9, extra_latency=50
            ),
        )
        assert slow.mean_lookup_cycles > base.mean_lookup_cycles

    def test_fault_events_counted(self, table):
        cfg = small_config()
        streams = locality_streams(4, n=200)
        faults = FaultSchedule().fail_lc(100, 0).recover_lc(400, 0)
        r = run_once(table, cfg, streams, faults=faults)
        assert r.fault_events == 2

    def test_schedule_rejected_against_wrong_shape(self, table):
        cfg = small_config(n_lcs=2)
        streams = locality_streams(2, n=50)
        with pytest.raises(FaultScheduleError):
            run_once(
                table, cfg, streams, faults=FaultSchedule().fail_lc(10, 5)
            )

    def test_memoized_plan_not_mutated(self, table):
        cfg = small_config(replicas=2)
        plan = partition_table(
            table, 4, replicas=2
        )
        from repro.tries.reference import HashReferenceMatcher

        matchers = [HashReferenceMatcher(t) for t in plan.tables]
        sim = SpalSimulator(table, cfg, plan=plan, matchers=matchers)
        faults = FaultSchedule().fail_lc(200, 1)
        sim.run(locality_streams(4, n=200), faults=faults, name="t")
        # The injected plan must come back untouched (the simulator works
        # on a private copy under LC faults).
        assert plan.failed_lcs == set()
        assert sim.plan is not plan
        assert sim.plan.failed_lcs == {1}


class TestPlanEpoch:
    def test_epoch_bumps_on_state_change_only(self, table):
        plan = partition_table(table, 4, replicas=2)
        e0 = plan.epoch
        plan.fail_lc(1)
        assert plan.epoch == e0 + 1
        plan.fail_lc(1)  # already failed: no change
        assert plan.epoch == e0 + 1
        plan.restore_lc(1)
        assert plan.epoch == e0 + 2
        plan.restore_lc(1)  # already live: no change
        assert plan.epoch == e0 + 2

    def test_restore_out_of_range_raises(self, table):
        plan = partition_table(table, 4)
        with pytest.raises(PartitionError):
            plan.restore_lc(99)
        with pytest.raises(PartitionError):
            plan.restore_lc(-1)

    def test_live_replica_table_cached_per_epoch(self, table):
        plan = partition_table(table, 4, replicas=2)
        addrs = np.arange(512, dtype=np.uint64)
        plan.home_lc_batch(addrs)
        cached = plan._live_cache
        assert cached is not None and cached[0] == plan.epoch
        plan.home_lc_batch(addrs)
        assert plan._live_cache is cached  # reused, not rebuilt
        plan.fail_lc(2)
        plan.home_lc_batch(addrs)
        assert plan._live_cache is not cached
        assert plan._live_cache[0] == plan.epoch

    def test_copy_for_faults_isolated(self, table):
        plan = partition_table(table, 4, replicas=2)
        copy = plan.copy_for_faults()
        copy.fail_lc(3)
        assert plan.failed_lcs == set()
        assert copy.failed_lcs == {3}
        assert copy.epoch == plan.epoch + 1
        # Tables are shared (they are immutable during simulation).
        assert copy.tables is plan.tables or list(copy.tables) == list(
            plan.tables
        )


class TestRouterFacade:
    def make_router(self, table, replicas=2):
        return SpalRouter(
            table,
            SpalConfig(
                n_lcs=4,
                cache=CacheConfig(n_blocks=64),
                replicas=replicas,
            ),
            matcher_factory=LuleaTrie,
        )

    def test_lookup_at_failed_lc_raises(self, table):
        router = self.make_router(table)
        router.fail_line_card(1)
        with pytest.raises(SimulationError):
            router.lookup(12345, arrival_lc=1)
        # Other cards still answer.
        assert router.lookup(12345, arrival_lc=0) is not None

    def test_failover_to_replica_preserves_results(self, table):
        router = self.make_router(table, replicas=2)
        rng = np.random.default_rng(46)
        addrs = [int(a) for a in rng.integers(0, 1 << 32, size=150, dtype=np.uint64)]
        expected = [router.lookup_direct(a) for a in addrs]
        router.fail_line_card(2)
        got = [router.lookup(a, arrival_lc=0) for a in addrs]
        assert got == expected

    def test_unreplicated_dead_home_raises_unreachable(self, table):
        router = self.make_router(table, replicas=1)
        rng = np.random.default_rng(44)
        victim = None
        for a in rng.integers(0, 1 << 32, size=4096, dtype=np.uint64):
            if router.plan.home_lc(int(a)) == 2:
                victim = int(a)
                break
        assert victim is not None
        router.fail_line_card(2)
        with pytest.raises(UnreachablePatternError):
            router.lookup(victim, arrival_lc=0)
        router.recover_line_card(2)
        assert router.lookup(victim, arrival_lc=0) is not None

    def test_fail_invalidates_rem_entries_elsewhere(self, table):
        router = self.make_router(table, replicas=1)
        # Warm LC 0's cache with remote results homed across the router.
        rng = np.random.default_rng(45)
        for a in rng.integers(0, 1 << 32, size=600, dtype=np.uint64):
            router.lookup(int(a), arrival_lc=0)
        from repro.core.lr_cache import REM

        def rem_count():
            return sum(
                1
                for s in router.line_cards[0].cache._sets
                for e in s.values()
                if e.mix == REM
            )

        before = rem_count()
        assert before > 0
        router.fail_line_card(2)
        assert rem_count() < before

    def test_out_of_range_fail_recover(self, table):
        router = self.make_router(table)
        with pytest.raises(SimulationError):
            router.fail_line_card(9)
        with pytest.raises(SimulationError):
            router.recover_line_card(9)


class TestLineCard:
    def test_fail_recover_cycle_flushes_cache(self, table):
        lc = LineCard(
            0,
            table,
            matcher_factory=LuleaTrie,
            cache_config=CacheConfig(n_blocks=16),
        )
        lc.lookup_local(1234)
        assert lc.cache.occupancy() > 0
        lc.fail()
        assert not lc.alive
        lc.recover()
        assert lc.alive
        assert lc.cache.occupancy() == 0


class TestOverload:
    """Bounded queues, load shedding, and gray failures."""

    def test_none_capacities_bit_identical_to_unbounded(self, table):
        streams = locality_streams(4)
        base = run_once(table, small_config(), streams)
        # shed_policy/shed_seed are inert until a capacity is set.
        armed = run_once(
            table, small_config(shed_policy="red", shed_seed=9), streams
        )
        assert np.array_equal(base.latencies, armed.latencies)
        assert base.summary() == armed.summary()
        assert armed.drops == {}

    def test_bounded_fe_queue_sheds_and_audits(self, table):
        streams = locality_streams(4, n=600)
        cfg = small_config(fe_queue_capacity=2, fabric_queue_capacity=4)
        r = run_once(table, cfg, streams)
        assert r.drops.get("queue_full", 0) > 0
        assert r.packets + r.total_drops == sum(len(s) for s in streams)
        # The run-end audit's invariant, restated from the outside: the
        # recorded high-water marks never reached the bounds.
        assert max(r.extra["max_fe_backlog"]) < 2
        assert r.extra["max_fabric_backlog"] < 4

    @pytest.mark.parametrize("policy", ["tail_drop", "red", "priority"])
    def test_shed_policies_conserve_and_repeat(self, table, policy):
        streams = locality_streams(4, n=500, seed=8)
        cfg = small_config(
            fe_queue_capacity=3, fabric_queue_capacity=6, shed_policy=policy
        )
        a = run_once(table, cfg, streams)
        b = run_once(table, cfg, streams)
        assert a.packets + a.total_drops == sum(len(s) for s in streams)
        assert np.array_equal(a.latencies, b.latencies)
        assert a.drops == b.drops
        if policy == "tail_drop":
            assert a.drops.get("shed", 0) == 0

    def test_slow_lc_inflates_latency(self, table):
        streams = locality_streams(4)
        base = run_once(table, small_config(), streams)
        slow = run_once(
            table,
            small_config(),
            streams,
            faults=FaultSchedule().slow_lc(0, 10**9, lc=0, multiplier=4.0),
        )
        assert slow.mean_lookup_cycles > base.mean_lookup_cycles
        assert sum(slow.drops.values()) == 0  # slowdown degrades, never drops

    def test_flap_link_loses_messages_retries_recover(self, table):
        streams = locality_streams(4)
        faults = FaultSchedule().flap_link(
            0, 10**9, period=100, down_cycles=50
        )
        r = run_once(table, small_config(replicas=2), streams, faults=faults)
        assert r.fabric_dropped_messages > 0
        assert r.retries > 0
        assert r.packets + r.total_drops == sum(len(s) for s in streams)

    def test_degraded_cache_lowers_hit_rate(self, table):
        streams = locality_streams(4)
        base = run_once(table, small_config(), streams)
        gray = run_once(
            table,
            small_config(),
            streams,
            faults=FaultSchedule(seed=3).degrade_lc_cache(
                0, 10**9, lc=0, miss_fraction=0.5
            ),
        )
        assert gray.cache_stats[0]["hit_rate"] < base.cache_stats[0]["hit_rate"]
        assert gray.packets == base.packets  # forced misses never drop


IPV4_TABLE = random_small_table(80, seed=5, max_length=18)
IPV6_TABLE = make_ipv6_table(80, seed=6)


class TestProperties:
    @given(
        failed=st.sets(st.integers(0, 5), max_size=5),
        seed=st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_home_lc_batch_matches_scalar_under_failures_ipv4(
        self, failed, seed
    ):
        plan = partition_table(IPV4_TABLE, 6, replicas=2)
        for lc in failed:
            plan.fail_lc(lc)
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 1 << 32, size=128, dtype=np.uint64)
        self.check_batch_matches_scalar(plan, [int(a) for a in addrs])

    @given(
        failed=st.sets(st.integers(0, 3), max_size=3),
        seed=st.integers(0, 200),
    )
    @settings(max_examples=20, deadline=None)
    def test_home_lc_batch_matches_scalar_under_failures_ipv6(
        self, failed, seed
    ):
        plan = partition_table(IPV6_TABLE, 4, replicas=2)
        for lc in failed:
            plan.fail_lc(lc)
        rng = np.random.default_rng(seed)
        addrs = [
            (0x2000 << 112) | int(x)
            for x in rng.integers(0, 1 << 62, size=64)
        ]
        self.check_batch_matches_scalar(plan, addrs)

    @staticmethod
    def check_batch_matches_scalar(plan, addrs):
        """Batch and scalar homing must agree elementwise — including on
        raising when every replica of some pattern in the set has failed."""
        try:
            batch = plan.home_lc_batch(addrs)
        except UnreachablePatternError:
            scalar_raises = False
            for a in addrs:
                try:
                    plan.home_lc(a)
                except UnreachablePatternError:
                    scalar_raises = True
                    break
            assert scalar_raises
            return
        for a, got in zip(addrs, batch):
            assert plan.home_lc(a) == int(got)

    @given(seed=st.integers(0, 300), n=st.integers(20, 120))
    @settings(max_examples=15, deadline=None)
    def test_zero_fault_schedule_identical_fast_path_on_off(
        self, seed, n, fast_path_bit_identity
    ):
        cfg = SpalConfig(
            n_lcs=3,
            cache=CacheConfig(n_blocks=32),
            fe_lookup_cycles=5,
            replicas=2,
        )
        rng = np.random.default_rng(seed)
        streams = [
            rng.integers(0, 1 << 12, size=n).astype(np.uint64)
            for _ in range(3)
        ]
        fast_path_bit_identity(
            lambda: SpalSimulator(IPV4_TABLE, cfg).run(
                [s.copy() for s in streams], faults=FaultSchedule(), name="t"
            )
        )

    @given(
        fe_cap=st.one_of(st.none(), st.integers(1, 4)),
        fab_cap=st.one_of(st.none(), st.integers(2, 8)),
        policy=st.sampled_from(("tail_drop", "red", "priority")),
        gray=st.booleans(),
        churny=st.booleans(),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=12, deadline=None)
    def test_conservation_bounded_gray_churn_fast_path(
        self, fe_cap, fab_cap, policy, gray, churny, seed,
        fast_path_bit_identity,
    ):
        """The overload invariants hold at every point of the bounded x
        gray x churn cube, with the batch fast paths on and off: every
        offered packet completes or is one counted drop, and bounded
        queues never reach their capacity."""
        cfg = SpalConfig(
            n_lcs=3,
            cache=CacheConfig(n_blocks=32),
            fe_lookup_cycles=5,
            replicas=2,
            fe_queue_capacity=fe_cap,
            fabric_queue_capacity=fab_cap,
            shed_policy=policy,
            shed_seed=seed,
        )
        rng = np.random.default_rng(seed)
        streams = [
            rng.integers(0, 1 << 12, size=150).astype(np.uint64)
            for _ in range(3)
        ]
        faults = (
            FaultSchedule(seed=seed)
            .slow_lc(200, 2500, lc=1, multiplier=2.0)
            .flap_link(300, 2000, period=128, down_cycles=16)
            .degrade_lc_cache(250, 2200, lc=0, miss_fraction=0.3)
            if gray
            else None
        )
        updates = (
            generate_churn(
                IPV4_TABLE, rate_per_s=200_000, horizon_cycles=3000, seed=seed
            )
            if churny
            else None
        )
        on, _ = fast_path_bit_identity(
            lambda: SpalSimulator(IPV4_TABLE, cfg).run(
                [s.copy() for s in streams],
                faults=faults,
                updates=updates,
                name="t",
            )
        )
        assert on.packets + on.total_drops == 450
        assert sum(on.drops.values()) == on.total_drops
        if fe_cap is not None:
            assert max(on.extra["max_fe_backlog"]) < fe_cap
        if fab_cap is not None:
            assert on.extra["max_fabric_backlog"] < fab_cap
