"""Tests for table/series rendering."""

from repro.analysis import render_series, render_table


class TestRenderTable:
    def test_basic_shape(self):
        out = render_table(["a", "b"], [[1, 2.5], ["x", 3]])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_title(self):
        out = render_table(["a"], [[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = render_table(["v"], [[1.23456]])
        assert "1.23" in out

    def test_column_alignment(self):
        out = render_table(["col", "x"], [["long-value", 1], ["s", 22]])
        lines = out.splitlines()
        # All rows have the same width.
        assert len({len(l) for l in lines[:1] + lines[2:]}) == 1


class TestRenderSeries:
    def test_series_columns(self):
        out = render_series("x", [1, 2], {"s1": [0.1, 0.2], "s2": [1.0, 2.0]})
        lines = out.splitlines()
        assert "s1" in lines[0] and "s2" in lines[0]
        assert "0.10" in out and "2.00" in out

    def test_none_values_dash(self):
        out = render_series("x", [1], {"s": [None]})
        assert "-" in out.splitlines()[-1]

    def test_custom_format(self):
        out = render_series("x", [1], {"s": [3.14159]}, fmt="{:.4f}")
        assert "3.1416" in out
