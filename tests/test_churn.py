"""Tests for the live route-churn pipeline: schedule generation, the
incremental matcher updates, staleness-free cache invalidation, and the
cycle-interleaved simulator path."""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import CacheConfig, SpalConfig, SpalRouter
from repro.errors import SimulationError, TrieError
from repro.routing import (
    ChurnSchedule,
    Prefix,
    RoutingTable,
    generate_churn,
    random_small_table,
)
from repro.sim import SpalSimulator
from repro.traffic import FlowPopulation, TraceSpec, generate_router_streams
from repro.tries import (
    BinaryTrie,
    DPTrie,
    HashReferenceMatcher,
    LCTrie,
    LuleaTrie,
    UpdateResult,
)


@pytest.fixture(scope="module")
def table():
    return random_small_table(300, seed=33)


def streams_for(table, n_lcs, n_packets, seed=1):
    spec = TraceSpec("churn-test", n_flows=400, seed=seed, recency=0.3)
    pop = FlowPopulation(spec, table)
    return generate_router_streams(pop, n_lcs, n_packets)


class TestChurnGenerator:
    def test_deterministic(self, table):
        a = generate_churn(table, 50_000, 100_000, seed=4)
        b = generate_churn(table, 50_000, 100_000, seed=4)
        assert [(e.cycle, e.update) for e in a] == [
            (e.cycle, e.update) for e in b
        ]

    def test_mean_rate_matches_request(self, table):
        horizon = 1_000_000
        sched = generate_churn(table, 100_000, horizon, seed=2)
        assert sched.mean_rate_per_second(horizon) == pytest.approx(
            100_000, rel=0.01
        )

    def test_bursty_not_uniform(self, table):
        """Inter-event gaps must be bimodal: tight intra-burst spacing
        plus long quiet gaps — not a uniform drizzle."""
        sched = generate_churn(
            table, 200_000, 2_000_000, seed=5, burst_mean=8.0
        )
        cycles = [e.cycle for e in sched]
        gaps = np.diff(cycles)
        assert len(gaps) > 50
        tight = (gaps <= 400).sum()
        loose = (gaps > 4_000).sum()
        assert tight > len(gaps) // 2   # bursts dominate event count
        assert loose > 0                # separated by quiet gaps

    def test_validates_and_applies_in_order(self, table):
        horizon = 500_000
        sched = generate_churn(table, 100_000, horizon, seed=6)
        sched.validate(table)  # must not raise
        work = table.copy()
        for ev in sched:
            if ev.next_hop is None:
                work.remove(ev.prefix)
            else:
                work.update(ev.prefix, ev.next_hop)

    def test_builder_and_validation_errors(self, table):
        sched = (
            ChurnSchedule()
            .announce(100, Prefix.from_string("10.0.0.0/8"), 3)
            .withdraw(200, Prefix.from_string("10.0.0.0/8"))
        )
        assert len(sched) == 2
        sched.validate(table)
        bad = ChurnSchedule().withdraw(50, Prefix.from_string("99.0.0.0/8"))
        with pytest.raises(ValueError):
            bad.validate(table)
        with pytest.raises(ValueError):
            generate_churn(table, -1, 1000)
        with pytest.raises(ValueError):
            generate_churn(table, 100, 0)


@st.composite
def prefixes(draw, width=32):
    length = draw(st.integers(0, width))
    value = draw(st.integers(0, (1 << width) - 1))
    mask = ((1 << length) - 1) << (width - length) if length else 0
    return Prefix(value & mask, length, width)


@st.composite
def interleavings(draw, width=32):
    """A base table plus a mixed sequence of updates and lookups."""
    base = draw(
        st.lists(
            st.tuples(prefixes(width), st.integers(0, 63)),
            min_size=1,
            max_size=25,
        )
    )
    ops = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("update"),
                    prefixes(width),
                    st.integers(0, 63),
                ),
                st.tuples(
                    st.just("lookup"),
                    st.integers(0, (1 << width) - 1),
                    st.none(),
                ),
            ),
            max_size=30,
        )
    )
    return base, ops


class TestInterleavedUpdateProperty:
    @settings(max_examples=60, deadline=None)
    @given(interleavings())
    def test_matchers_agree_with_final_table_oracle(self, data):
        """After any interleaved update/lookup sequence, every matcher
        agrees with a reference oracle rebuilt from the final table."""
        base, ops = data
        table = RoutingTable(32)
        for prefix, hop in base:
            table.update(prefix, hop)
        final = table.copy()
        matchers = [
            BinaryTrie(table),
            DPTrie(table),
            LuleaTrie(table),
            LCTrie(table),
            HashReferenceMatcher(table),
        ]
        probes = []
        for op in ops:
            if op[0] == "update":
                _, prefix, hop = op
                final.update(prefix, hop)
                for m in matchers:
                    res = m.apply_update(prefix, hop)
                    assert isinstance(res, UpdateResult)
                    assert res.kind in ("patch", "rebuild")
                    assert res.service_cycles > 0
            else:
                probes.append(op[1])
        # Mid-sequence probes plus a final sweep over collected addresses
        # and every route's first address.
        probes.extend(p.first_address() for p, _ in base)
        oracle = HashReferenceMatcher(final)
        for addr in probes:
            expected = oracle.lookup(addr)
            for m in matchers:
                assert m.lookup(addr) == expected, type(m).__name__

    @settings(max_examples=30, deadline=None)
    @given(interleavings())
    def test_withdrawals_interleave_cleanly(self, data):
        """Announce-then-withdraw sequences keep matchers oracle-exact."""
        base, ops = data
        table = RoutingTable(32)
        for prefix, hop in base:
            table.update(prefix, hop)
        final = table.copy()
        matchers = [LuleaTrie(table), LCTrie(table)]
        for op in ops:
            if op[0] != "update":
                continue
            _, prefix, hop = op
            final.update(prefix, hop)
            for m in matchers:
                m.apply_update(prefix, hop)
            # Withdraw every other announced prefix straight away.
            if hop % 2 == 0 and prefix in final:
                final.remove(prefix)
                for m in matchers:
                    m.apply_update(prefix, None)
        oracle = HashReferenceMatcher(final)
        for p, _ in base:
            addr = p.first_address()
            for m in matchers:
                assert m.lookup(addr) == oracle.lookup(addr)


class TestIncrementalStructures:
    def test_lulea_patches_deep_and_rebuilds_shallow(self, table):
        trie = LuleaTrie(table)
        # A deep update inside a 16-bit group that already holds deep
        # routes patches just that group's chunk; the *first* deep route
        # of a group (and any shallow update) restructures level 1 and
        # rebuilds.
        seeded = next(p for p, _ in table.routes() if p.length > 24)
        deep = Prefix(seeded.value >> 8 << 8, 24, 32)
        res = trie.apply_update(deep, 7)
        assert res.kind == "patch"
        assert trie.lookup(deep.first_address()) == 7
        shallow = Prefix.from_string("10.0.0.0/8")
        res2 = trie.apply_update(shallow, 9)
        assert res2.kind == "rebuild"
        assert trie.update_patches >= 1
        assert trie.update_rebuilds >= 1

    def test_lulea_leak_threshold_forces_rebuild(self, table):
        trie = LuleaTrie(table)
        trie.rebuild_threshold = 0.0  # any leaked chunk trips the limit
        p = Prefix.from_string("10.20.0.0/24")
        trie.apply_update(p, 5)
        kinds = set()
        for i in range(24):
            r = trie.apply_update(Prefix.from_string(f"10.20.{i}.0/24"), i)
            kinds.add(r.kind)
            if r.kind == "rebuild":
                break
        assert "rebuild" in kinds  # threshold 0 forces compaction
        assert trie.leaked_chunks == 0  # a rebuild clears the leak count

    def test_lulea_withdraw_absent_raises(self, table):
        trie = LuleaTrie(table)
        with pytest.raises(TrieError):
            trie.apply_update(Prefix.from_string("250.1.2.0/24"), None)

    def test_lc_trie_patches_next_hop_change(self, table):
        trie = LCTrie(table)
        # A maximal-length route: its first address has no longer match,
        # so the patched hop is observable via lookup.
        prefix, old_hop = max(table.routes(), key=lambda r: r[0].length)
        res = trie.apply_update(prefix, old_hop + 1)
        assert res.kind == "patch"
        assert trie.lookup(prefix.first_address()) == old_hop + 1
        res2 = trie.apply_update(Prefix.from_string("1.2.3.0/24"), 5)
        assert res2.kind == "rebuild"
        assert trie.lookup(Prefix.from_string("1.2.3.0/24").first_address()) == 5

    def test_service_cycles_model(self):
        r = UpdateResult("patch", 10)
        assert r.service_ns == pytest.approx(10 * 12.0 + 120.0)
        assert r.service_cycles == 48  # ceil(240 / 5)


class TestRouterInvalidation:
    def _warm_router(self, table, policy_table=None):
        router = SpalRouter(
            table.copy(),
            SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256)),
        )
        return router

    def test_selective_never_serves_stale_loc_or_rem(self, table):
        """The regression the selective policy must pass: warm LOC and REM
        entries under a prefix, update its next hop, and every subsequent
        lookup must see the new hop — from any arrival LC."""
        router = self._warm_router(table)
        prefix = Prefix.from_string("10.0.0.0/8")
        addr = 0x0A010203
        # Warm from two LCs: one gets a LOC or REM entry, the other a REM.
        before = [router.lookup(addr, lc) for lc in range(4)]
        assert len(set(before)) == 1
        new_hop = (before[0] + 1) % 60
        router.apply_update(prefix, new_hop, invalidation="selective")
        after = [router.lookup(addr, lc) for lc in range(4)]
        assert after == [new_hop] * 4

    def test_rem_policy_also_stale_free_and_narrower(self, table):
        router = self._warm_router(table)
        prefix = Prefix.from_string("10.0.0.0/8")
        addr = 0x0A010203
        miss_addr = 0xC0A80101
        for lc in range(4):
            router.lookup(addr, lc)
            router.lookup(miss_addr, lc)
        new_hop = (router.lookup(addr, 0) + 1) % 60
        router.apply_update(prefix, new_hop, invalidation="rem")
        assert [router.lookup(addr, lc) for lc in range(4)] == [new_hop] * 4
        # Unrelated entries survive at every LC (selectivity).
        assert any(
            lc.cache.peek(miss_addr) is not None for lc in router.line_cards
        )

    def test_incremental_stats_accumulate(self, table):
        router = self._warm_router(table)
        router.apply_update(
            Prefix.from_string("10.1.2.0/24"), 3, invalidation="selective"
        )
        stats = router.stats
        assert stats.updates == 1
        assert stats.update_patches + stats.update_rebuilds >= 1
        assert stats.update_service_cycles > 0
        snap = router.metrics_snapshot()
        assert snap["router.updates"] == 1
        assert "router.update_service_cycles" in snap


class TestSimulatorChurn:
    def _run(self, table, updates=None, policy="selective", verify=True,
             n_packets=1500, registry=None, trace=None):
        config = SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256))
        sim = SpalSimulator(
            table, config, verify=verify, registry=registry, trace=trace
        )
        streams = streams_for(table, 4, n_packets)
        kwargs = {}
        if updates is not None:
            kwargs["updates"] = updates
            kwargs["update_policy"] = policy
        return sim, sim.run(streams, speed_gbps=10, **kwargs)

    def test_zero_update_runs_bit_identical(self, table):
        _, base = self._run(table)
        _, empty = self._run(table, updates=ChurnSchedule())
        assert np.array_equal(base.latencies, empty.latencies)
        assert base.summary() == empty.summary()
        assert base.metrics_snapshot == empty.metrics_snapshot

    def test_zero_update_bit_identity_survives_fast_path_off(
        self, table, fast_path_bit_identity
    ):
        """Exercised in subprocesses (via the shared conftest helper) so
        REPRO_BATCH=0 is seen at import."""
        fast_path_bit_identity(subprocess_code=(
            "import numpy as np\n"
            "from repro.core import CacheConfig, SpalConfig\n"
            "from repro.routing import random_small_table\n"
            "from repro.sim import SpalSimulator\n"
            "from repro.traffic import FlowPopulation, TraceSpec, "
            "generate_router_streams\n"
            "table = random_small_table(300, seed=33)\n"
            "spec = TraceSpec('churn-test', n_flows=400, seed=1, recency=0.3)\n"
            "streams = generate_router_streams("
            "FlowPopulation(spec, table), 4, 800)\n"
            "cfg = SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256))\n"
            "sim = SpalSimulator(table, cfg)\n"
            "res = sim.run(streams, speed_gbps=10)\n"
            "print(res.packets, round(res.mean_lookup_cycles, 6), "
            "res.horizon_cycles, res.fabric_messages)\n"
        ))

    def test_churn_run_is_deterministic_and_oracle_verified(self, table):
        horizon = 150_000
        updates = generate_churn(table, 100_000, horizon, seed=9)
        assert len(updates) > 0
        _, a = self._run(table, updates=updates, policy="selective")
        updates2 = generate_churn(table, 100_000, horizon, seed=9)
        _, b = self._run(table, updates=updates2, policy="selective")
        # verify=True already oracle-checked every FE result in both runs.
        assert np.array_equal(a.latencies, b.latencies)
        assert a.summary() == b.summary()
        assert a.update_events_applied == len(updates)
        assert a.update_service_cycles > 0
        assert a.invalidation_messages > 0

    def test_selective_never_serves_stale_hop_end_to_end(self, table):
        """Every packet's *served* next hop must match an oracle replayed
        over the update timeline at its completion cycle — through LOC
        hits, REM hits, waiting lists and fabric replies."""
        horizon = 150_000
        updates = generate_churn(table, 200_000, horizon, seed=11)
        for policy in ("selective", "rem"):
            sched = generate_churn(table, 200_000, horizon, seed=11)
            sim, res = self._run(table, updates=sched, policy=policy)
            events = sorted(updates.events(), key=lambda e: e.cycle)
            # Replay: oracle state as a function of cycle.
            oracle = HashReferenceMatcher(table)
            idx = 0
            for pkt in sorted(sim.completed, key=lambda p: p.complete_time):
                while idx < len(events) and events[idx].cycle < pkt.complete_time:
                    oracle.apply_update(
                        events[idx].prefix, events[idx].next_hop
                    )
                    idx += 1
                # The served hop must be the oracle answer at *some* cycle
                # in [arrival, completion] — the update may land mid-flight.
                want_now = oracle.lookup(pkt.dest)
                if pkt.served != want_now:
                    # Tolerate a hop read legitimately before an update
                    # that landed while the packet was in flight.
                    pre = HashReferenceMatcher(table)
                    for ev in events:
                        if ev.cycle >= pkt.arrival_time:
                            break
                        pre.apply_update(ev.prefix, ev.next_hop)
                    valid = {want_now, pre.lookup(pkt.dest)}
                    mid = HashReferenceMatcher(table)
                    for ev in events:
                        if ev.cycle > pkt.complete_time:
                            break
                        mid.apply_update(ev.prefix, ev.next_hop)
                        valid.add(mid.lookup(pkt.dest))
                    assert pkt.served in valid, (
                        f"stale hop for {pkt.dest:#x} under {policy}"
                    )

    def test_flush_policy_costs_more_than_selective(self, table):
        horizon = 150_000
        runs = {}
        for policy in ("flush", "selective"):
            sched = generate_churn(table, 300_000, horizon, seed=13)
            _, runs[policy] = self._run(table, updates=sched, policy=policy)
        assert (
            runs["selective"].mean_lookup_cycles
            <= runs["flush"].mean_lookup_cycles
        )
        assert runs["selective"].churn_misses <= runs["flush"].churn_misses
        assert (
            runs["selective"].invalidation_entries_dropped
            < runs["flush"].invalidation_entries_dropped
        )

    def test_churn_metrics_in_registry_and_summary(self, table):
        from repro.obs import MetricsRegistry

        horizon = 150_000
        sched = generate_churn(table, 200_000, horizon, seed=15)
        reg = MetricsRegistry()
        _, res = self._run(table, updates=sched, registry=reg)
        snap = res.metrics_snapshot
        assert snap["sim.updates.applied"] == res.update_events_applied
        assert (
            snap["sim.updates.service_cycles"] == res.update_service_cycles
        )
        assert snap["sim.updates.invalidation_msgs"] == (
            res.invalidation_messages
        )
        s = res.summary()
        assert s["updates_applied"] == res.update_events_applied
        assert "churn_misses" in s

    def test_churn_events_traced(self, table):
        from repro.obs import Tracer

        horizon = 150_000
        sched = generate_churn(table, 200_000, horizon, seed=17)
        tracer = Tracer(enabled=True)
        _, res = self._run(table, updates=sched, trace=tracer)
        kinds = {ev["name"] for ev in tracer.events}
        assert "update" in kinds
        assert res.update_events_applied > 0

    def test_requires_partitioned_and_valid_policy(self, table):
        sched = ChurnSchedule().announce(
            100, Prefix.from_string("10.0.0.0/8"), 1
        )
        config = SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64))
        sim = SpalSimulator(table, config, partitioned=False)
        streams = streams_for(table, 2, 200)
        with pytest.raises(SimulationError):
            sim.run(streams, updates=sched)
        sim2 = SpalSimulator(table, config)
        with pytest.raises(SimulationError):
            sim2.run(streams, updates=sched, update_policy="sometimes")

    def test_injected_plan_and_matchers_untouched(self, table):
        from repro.core.partition import partition_table

        plan = partition_table(table, 4)
        sizes = plan.partition_sizes()
        matchers = [HashReferenceMatcher(t) for t in plan.tables]
        probe = 0x0A000001
        before = [m.lookup(probe) for m in matchers]
        config = SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256))
        sim = SpalSimulator(table, config, plan=plan, matchers=matchers)
        sched = generate_churn(table, 200_000, 150_000, seed=19)
        sim.run(streams_for(table, 4, 800), speed_gbps=10, updates=sched)
        assert plan.partition_sizes() == sizes
        assert [m.lookup(probe) for m in matchers] == before
