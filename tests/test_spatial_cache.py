"""Tests for the spatial-block cache model (paper's block-size claim)."""

import numpy as np
import pytest

from repro.errors import CacheConfigError
from repro.core import SpatialCache


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(CacheConfigError):
            SpatialCache(capacity_results=0)

    def test_bad_span(self):
        with pytest.raises(CacheConfigError):
            SpatialCache(span=3)
        with pytest.raises(CacheConfigError):
            SpatialCache(span=0)

    def test_divisibility(self):
        with pytest.raises(CacheConfigError):
            SpatialCache(capacity_results=100, span=8, associativity=4)


class TestBehaviour:
    def test_temporal_hit(self):
        cache = SpatialCache(capacity_results=64, span=1)
        assert not cache.access(42)
        assert cache.access(42)

    def test_range_install_serves_neighbours(self):
        cache = SpatialCache(capacity_results=64, span=4)
        assert not cache.access(40)   # installs the range [40..43]
        assert cache.access(41)       # prefetch hit (range semantics)
        assert not cache.access(44)   # outside the range

    def test_span_blocks_share_capacity(self):
        assert SpatialCache(capacity_results=64, span=1).n_blocks == 64
        assert SpatialCache(capacity_results=64, span=4).n_blocks == 16

    def test_lru_within_set(self):
        cache = SpatialCache(capacity_results=4, span=1, associativity=4)
        for a in (0, 1, 2, 3):
            cache.access(a)
        cache.access(0)      # touch 0; 1 becomes LRU
        cache.access(4)      # evicts 1
        assert cache.access(0)
        assert not cache.access(1)

    def test_run_returns_hit_rate(self):
        cache = SpatialCache(capacity_results=16, span=1)
        rate = cache.run([5, 5, 5, 6])
        assert rate == pytest.approx(0.5)

    def test_paper_claim_span1_wins_on_weak_spatial_locality(self):
        """Temporal-only reuse: span 1 must beat larger spans at equal SRAM."""
        rng = np.random.default_rng(0)
        # 2000 hot addresses scattered across the space: no spatial locality.
        hot = rng.integers(0, 1 << 32, size=2000)
        stream = hot[rng.integers(0, len(hot), size=20000)]
        rates = {
            span: SpatialCache(capacity_results=2048, span=span).run(stream)
            for span in (1, 4, 16)
        }
        assert rates[1] > rates[4] > rates[16]

    def test_spatial_locality_flips_the_result(self):
        """Sanity: with genuinely contiguous references, larger spans help —
        the model is measuring locality, not hard-coding the conclusion."""
        rng = np.random.default_rng(1)
        base = rng.integers(0, 1 << 30, size=500) * 4
        # Each flow walks its 4 consecutive addresses repeatedly.
        stream = []
        for _ in range(8000):
            b = int(base[rng.integers(0, len(base))])
            stream.extend([b, b + 1, b + 2, b + 3])
        small = SpatialCache(capacity_results=1024, span=1).run(stream)
        large = SpatialCache(capacity_results=1024, span=4).run(stream)
        assert large > small


class TestAblationRunner:
    def test_block_size_ablation_monotone(self):
        from repro.experiments import run_block_size_ablation

        result = run_block_size_ablation(n_addresses=8000)
        rates = [r["hit_rate"] for r in result.rows]
        assert rates[0] >= rates[-1]
        assert result.rows[0]["span"] == 1

    def test_associativity_sweep(self):
        from repro.experiments import run_associativity_sweep

        result = run_associativity_sweep(packets_per_lc=2500)
        by_assoc = {r["associativity"]: r["mean_cycles"] for r in result.rows}
        # Direct-mapped is clearly worse than 4-way (the paper's point).
        assert by_assoc[1] > by_assoc[4]
        # 4-way is "nearly best": within 25% of 8-way.
        assert by_assoc[4] <= by_assoc[8] * 1.25
