"""Tests for the LR-cache, victim cache and replacement policies."""

import pytest

from repro.errors import CacheConfigError
from repro.core import LOC, REM, LRCache, VictimCache, make_policy
from repro.core.lr_cache import CacheEntry


def filled_cache(**kw):
    defaults = dict(n_blocks=8, associativity=4, mix=0.5, victim_blocks=0)
    defaults.update(kw)
    return LRCache(**defaults)


class TestConfigValidation:
    def test_bad_blocks(self):
        with pytest.raises(CacheConfigError):
            LRCache(n_blocks=0)

    def test_bad_associativity(self):
        with pytest.raises(CacheConfigError):
            LRCache(n_blocks=10, associativity=4)  # 4 does not divide 10

    def test_bad_mix(self):
        with pytest.raises(CacheConfigError):
            LRCache(n_blocks=8, mix=1.5)

    def test_bad_policy(self):
        with pytest.raises(CacheConfigError):
            LRCache(n_blocks=8, policy="clock")

    def test_negative_victim(self):
        with pytest.raises(CacheConfigError):
            LRCache(n_blocks=8, victim_blocks=-1)


class TestBasicOperation:
    def test_miss_then_hit(self):
        cache = filled_cache()
        assert cache.probe(100) is None
        entry = cache.allocate(100, LOC)
        cache.fill(entry, 7)
        hit = cache.probe(100)
        assert hit is not None and not hit.waiting
        assert hit.next_hop == 7
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_waiting_hit(self):
        cache = filled_cache()
        cache.probe(100)
        entry = cache.allocate(100, LOC)
        hit = cache.probe(100)
        assert hit is entry and hit.waiting
        assert cache.stats.waiting_hits == 1

    def test_fill_returns_waiters(self):
        cache = filled_cache()
        entry = cache.allocate(100, LOC)
        entry.waiters.extend(["pkt1", "pkt2"])
        waiters = cache.fill(entry, 3)
        assert waiters == ["pkt1", "pkt2"]
        assert entry.waiters == []
        assert not entry.waiting

    def test_insert_complete(self):
        cache = filled_cache()
        assert cache.insert_complete(42, 5, REM)
        hit = cache.probe(42)
        assert hit.next_hop == 5 and hit.mix == REM

    def test_flush(self):
        cache = filled_cache()
        cache.insert_complete(1, 1, LOC)
        cache.insert_complete(2, 2, LOC)
        cache.flush()
        assert cache.occupancy() == 0
        assert cache.probe(1) is None
        assert cache.stats.flushes == 1

    def test_occupancy_and_histogram(self):
        cache = filled_cache()
        cache.insert_complete(0, 1, LOC)
        cache.insert_complete(2, 1, REM)  # different set
        assert cache.occupancy() == 2
        assert cache.mix_histogram() == {"LOC": 1, "REM": 1}

    def test_storage_bytes_paper_sizing(self):
        # Paper conclusion: 4K x 6 bytes = 24 KB (plus victim).
        cache = LRCache(n_blocks=4096, victim_blocks=0)
        assert cache.storage_bytes() == 4096 * 6


class TestSetMapping:
    def test_addresses_map_to_distinct_sets(self):
        cache = filled_cache()  # 2 sets
        # addresses 0 and 1 land in different sets (index = addr % n_sets).
        cache.insert_complete(0, 1, LOC)
        cache.insert_complete(1, 1, LOC)
        assert len(cache._sets[0]) == 1
        assert len(cache._sets[1]) == 1

    def test_conflict_eviction_lru(self):
        cache = filled_cache()  # 2 sets x 4 ways
        # Fill one set with 4 LOC entries (addresses = 0 mod 2).
        for a in (0, 2, 4, 6):
            cache.insert_complete(a, 1, LOC)
        cache.probe(0)  # touch 0 so 2 is LRU
        cache.insert_complete(8, 1, LOC)
        assert cache.peek(2) is None
        assert cache.peek(0) is not None

    def test_fifo_policy(self):
        cache = filled_cache(policy="fifo")
        for a in (0, 2, 4, 6):
            cache.insert_complete(a, 1, LOC)
        cache.probe(0)  # touching does not matter under FIFO
        cache.insert_complete(8, 1, LOC)
        assert cache.peek(0) is None

    def test_random_policy_deterministic_with_seed(self):
        def evicted_set():
            cache = filled_cache(policy="random", policy_seed=3)
            for a in (0, 2, 4, 6):
                cache.insert_complete(a, 1, LOC)
            cache.insert_complete(8, 1, LOC)
            return {a for a in (0, 2, 4, 6) if cache.peek(a) is None}

        assert evicted_set() == evicted_set()


class TestMixReplacement:
    def test_rem_over_target_evicted_first(self):
        cache = filled_cache(mix=0.5)  # rem_target = 2
        cache.insert_complete(0, 1, LOC)
        cache.insert_complete(2, 1, REM)
        cache.insert_complete(4, 1, REM)
        cache.insert_complete(6, 1, REM)  # 3 REM > target 2
        cache.insert_complete(8, 1, LOC)
        # A REM entry must have been evicted, not the LOC one.
        assert cache.peek(0) is not None
        rem_left = sum(
            1 for a in (2, 4, 6) if cache.peek(a) is not None
        )
        assert rem_left == 2

    def test_loc_over_target_evicted_first(self):
        cache = filled_cache(mix=0.5)
        for a in (0, 2, 4):
            cache.insert_complete(a, 1, LOC)  # 3 LOC > target 2
        cache.insert_complete(6, 1, REM)
        cache.insert_complete(8, 1, REM)
        assert cache.peek(6) is not None
        loc_left = sum(1 for a in (0, 2, 4) if cache.peek(a) is not None)
        assert loc_left == 2

    def test_mix_zero_rejects_rem_when_full_of_loc(self):
        cache = filled_cache(mix=0.0)  # rem_target = 0
        for a in (0, 2, 4, 6):
            cache.insert_complete(a, 1, LOC)
        assert not cache.insert_complete(8, 1, REM)  # bypass
        assert cache.stats.bypasses == 1
        assert all(cache.peek(a) is not None for a in (0, 2, 4, 6))

    def test_mix_zero_still_evicts_existing_rem(self):
        cache = filled_cache(mix=0.0)
        cache.insert_complete(0, 1, REM)
        for a in (2, 4, 6):
            cache.insert_complete(a, 1, LOC)
        cache.insert_complete(8, 1, LOC)  # set full; REM over target
        assert cache.peek(0) is None

    def test_balanced_insert_evicts_within_class(self):
        cache = filled_cache(mix=0.5)
        cache.insert_complete(0, 1, LOC)
        cache.insert_complete(2, 1, LOC)
        cache.insert_complete(4, 1, REM)
        cache.insert_complete(6, 1, REM)
        cache.insert_complete(8, 1, REM)  # both classes at target
        # Insert is REM -> evict among REM (4 is LRU of the REMs).
        assert cache.peek(0) is not None and cache.peek(2) is not None
        assert cache.peek(4) is None

    def test_waiting_entries_never_evicted(self):
        cache = filled_cache()
        entries = [cache.allocate(a, LOC) for a in (0, 2, 4, 6)]
        assert all(e is not None for e in entries)
        # All four waiting: a new insert must bypass.
        assert cache.allocate(8, LOC) is None
        assert cache.stats.bypasses == 1
        assert all(cache.peek(a) is not None for a in (0, 2, 4, 6))

    def test_mix_quarter_for_small_cache(self):
        # Paper: gamma = 25% for 1K caches -> one block per set for REM.
        cache = LRCache(n_blocks=1024, mix=0.25, victim_blocks=0)
        assert cache.rem_target == 1


class TestVictimCache:
    def test_eviction_lands_in_victim(self):
        cache = filled_cache(victim_blocks=4)
        for a in (0, 2, 4, 6, 8):
            cache.insert_complete(a, a, LOC)
        # One of 0..6 was evicted into the victim cache.
        assert len(cache.victim) == 1
        evicted = [a for a in (0, 2, 4, 6) if a not in cache._sets[0]]
        assert cache.victim.peek(evicted[0]) is not None

    def test_victim_hit_swaps_back(self):
        cache = filled_cache(victim_blocks=4)
        for a in (0, 2, 4, 6, 8):
            cache.insert_complete(a, a, LOC)
        evicted = [a for a in (0, 2, 4, 6) if cache._sets[0].get(a) is None][0]
        entry = cache.probe(evicted)
        assert entry is not None and entry.next_hop == evicted
        assert cache.stats.victim_hits == 1
        assert cache._sets[0].get(evicted) is not None  # swapped back
        assert cache.victim.peek(evicted) is None

    def test_victim_capacity_bound(self):
        victim = VictimCache(capacity=2)
        for i, a in enumerate((1, 2, 3)):
            e = CacheEntry(a, LOC, i)
            e.waiting = False
            victim.insert(e)
        assert len(victim) == 2
        assert victim.peek(1) is None  # LRU displaced

    def test_victim_flush(self):
        victim = VictimCache(capacity=2)
        e = CacheEntry(5, LOC, 0)
        victim.insert(e)
        victim.flush()
        assert len(victim) == 0

    def test_victim_requires_positive_capacity(self):
        with pytest.raises(CacheConfigError):
            VictimCache(capacity=0)

    def test_waiting_entries_not_put_in_victim(self):
        cache = filled_cache(victim_blocks=4, mix=1.0)
        # Fill with 3 complete + 1 waiting.
        for a in (0, 2, 4):
            cache.insert_complete(a, 1, REM)
        cache.allocate(6, REM)
        cache.insert_complete(8, 1, REM)  # evicts a complete entry
        assert len(cache.victim) == 1


class TestPolicies:
    def test_make_policy(self):
        assert make_policy("lru").name == "lru"
        assert make_policy("fifo").name == "fifo"
        assert make_policy("random").name == "random"
        with pytest.raises(CacheConfigError):
            make_policy("nope")

    def test_hit_rate_property(self):
        cache = filled_cache()
        assert cache.stats.hit_rate == 0.0
        cache.insert_complete(0, 1, LOC)
        cache.probe(0)
        cache.probe(100)
        assert cache.stats.hit_rate == pytest.approx(0.5)
