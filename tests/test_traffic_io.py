"""Tests for trace persistence (traffic.io) and the LC-fill experiment."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.traffic import load_streams, save_streams


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        streams = [
            np.array([1, 2, 3], dtype=np.uint64),
            np.array([9, 8], dtype=np.uint64),
        ]
        manifest = {"trace": "D_75", "n": 3}
        path = tmp_path / "trace.npz"
        save_streams(path, streams, manifest)
        loaded = load_streams(path, expected_manifest=manifest)
        assert len(loaded) == 2
        assert (loaded[0] == streams[0]).all()
        assert (loaded[1] == streams[1]).all()

    def test_manifest_mismatch(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_streams(path, [np.array([1], dtype=np.uint64)], {"seed": 1})
        with pytest.raises(SimulationError):
            load_streams(path, expected_manifest={"seed": 2})

    def test_load_without_verification(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_streams(path, [np.array([5], dtype=np.uint64)], {"x": 1})
        loaded = load_streams(path)
        assert loaded[0][0] == 5

    def test_lc_ordering_stable_past_ten(self, tmp_path):
        streams = [np.array([i], dtype=np.uint64) for i in range(12)]
        path = tmp_path / "many.npz"
        save_streams(path, streams, {})
        loaded = load_streams(path)
        assert [int(s[0]) for s in loaded] == list(range(12))


class TestLCFillExperiment:
    def test_tradeoff_direction(self):
        from repro.experiments import run_lc_fill_sweep

        result = run_lc_fill_sweep(n_addresses=600)
        by_fill = {
            r["fill_factor"]: r
            for r in result.rows
            if isinstance(r["fill_factor"], float)
        }
        # Lower fill factor: more nodes, fewer (or equal) accesses.
        assert by_fill[0.125]["nodes"] >= by_fill[1.0]["nodes"]
        assert by_fill[0.125]["mean_accesses"] <= by_fill[1.0]["mean_accesses"]

    def test_root_branch_rows_present(self):
        from repro.experiments import run_lc_fill_sweep

        result = run_lc_fill_sweep(n_addresses=300)
        labels = [str(r["fill_factor"]) for r in result.rows]
        assert any("root=16" in l for l in labels)
