"""Coverage for the small public utilities on the trie interface."""

import pytest

from repro.routing import Prefix, RoutingTable, random_small_table
from repro.tries import BinaryTrie, check_matcher, matching_cycles, matching_time_ns
from repro.tries.base import sorted_routes


class TestCheckMatcher:
    def test_passes_on_correct_matcher(self):
        table = random_small_table(40, seed=71)
        check_matcher(BinaryTrie(table), table, range(0, 1 << 32, 1 << 27))

    def test_fails_on_wrong_matcher(self):
        table = RoutingTable.from_strings([("10.0.0.0/8", 1)])

        class Wrong(BinaryTrie):
            def lookup(self, address):
                return 99

        with pytest.raises(AssertionError):
            check_matcher(Wrong(table), table, [0x0A000001])


class TestSortedRoutes:
    def test_canonical_order(self):
        table = RoutingTable.from_strings(
            [("11.0.0.0/8", 3), ("10.0.0.0/8", 1), ("10.0.0.0/9", 2)]
        )
        routes = sorted_routes(table)
        assert [str(p) for p, _ in routes] == [
            "10.0.0.0/8",
            "10.0.0.0/9",
            "11.0.0.0/8",
        ]


class TestTimingModel:
    def test_paper_constants(self):
        # 6.6 accesses x 12ns + 120ns = 199.2ns -> 40 cycles of 5ns.
        assert matching_time_ns(6.6) == pytest.approx(199.2)
        assert matching_cycles(6.6) == 40
        # 16 accesses -> 312ns -> 63 cycles (paper rounds to "62 or so").
        assert matching_cycles(16) == 63

    def test_zero_accesses_floor(self):
        # Even with no memory reads the 120ns code execution remains.
        assert matching_cycles(0) == 24


class TestMatcherConveniences:
    def test_storage_kbytes(self):
        table = random_small_table(40, seed=72)
        trie = BinaryTrie(table)
        assert trie.storage_kbytes() == pytest.approx(trie.storage_bytes() / 1024)

    def test_lookup_with_length(self):
        table = RoutingTable.from_strings(
            [("10.0.0.0/8", 1), ("10.1.0.0/16", 2)]
        )
        trie = BinaryTrie(table)
        assert trie.lookup_with_length(0x0A010101) == (2, 16)
        assert trie.lookup_with_length(0x0A020101) == (1, 8)
        assert trie.lookup_with_length(0x0B000000) == (-1, -1)

    def test_route_chain(self):
        table = RoutingTable.from_strings(
            [("0.0.0.0/0", 0), ("10.0.0.0/8", 1), ("10.1.0.0/16", 2)]
        )
        trie = BinaryTrie(table)
        chain = trie.route_chain(0x0A010101, max_length=32)
        assert chain == [(0, 0), (8, 1), (16, 2)]
        # Bounded by max_length.
        assert trie.route_chain(0x0A010101, max_length=8) == [(0, 0), (8, 1)]

    def test_counter_reset_and_mean(self):
        table = random_small_table(30, seed=73)
        trie = BinaryTrie(table)
        trie.measure([1, 2, 3])
        assert trie.counter.lookups == 3
        trie.counter.reset()
        assert trie.counter.lookups == 0
        assert trie.counter.mean_accesses == 0.0
