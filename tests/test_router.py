"""Tests for the SpalRouter facade (functional SPAL flow, Sec. 3.3)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.core import CacheConfig, SpalConfig, SpalRouter
from repro.routing import Prefix, addresses_matching, random_small_table
from repro.tries import BinaryTrie


@pytest.fixture(scope="module")
def table():
    return random_small_table(400, seed=77)


def make_router(table, **overrides):
    kw = dict(n_lcs=4, cache=CacheConfig(n_blocks=64, victim_blocks=4))
    kw.update(overrides)
    return SpalRouter(table.copy(), SpalConfig(**kw))


class TestCorrectness:
    def test_lookup_matches_oracle(self, table):
        router = make_router(table)
        addrs = addresses_matching(table, 300, seed=1)
        rng = np.random.default_rng(2)
        arrivals = rng.integers(0, 4, size=300)
        for a, lc in zip(addrs, arrivals):
            assert router.lookup(int(a), int(lc)) == table.lookup(int(a))

    def test_lookup_correct_with_cache_hits(self, table):
        """Repeated lookups (cache-served) still return the right hop."""
        router = make_router(table)
        addrs = [int(a) for a in addresses_matching(table, 30, seed=3)]
        for _ in range(3):
            for a in addrs:
                assert router.lookup(a, 0) == table.lookup(a)
        # Second and third rounds must have hit the cache.
        assert router.line_cards[0].cache.stats.hits > 0

    def test_lookup_direct_bypasses_caches(self, table):
        router = make_router(table)
        addrs = addresses_matching(table, 100, seed=4)
        for a in addrs:
            assert router.lookup_direct(int(a)) == table.lookup(int(a))

    def test_no_cache_config(self, table):
        router = make_router(table, cache=None)
        addrs = addresses_matching(table, 100, seed=5)
        for a in addrs:
            assert router.lookup(int(a), 1) == table.lookup(int(a))

    def test_arrival_lc_out_of_range(self, table):
        router = make_router(table)
        with pytest.raises(SimulationError):
            router.lookup(1, 9)

    def test_custom_matcher_factory(self, table):
        router = SpalRouter(
            table.copy(),
            SpalConfig(n_lcs=2, cache=None),
            matcher_factory=BinaryTrie,
        )
        addrs = addresses_matching(table, 100, seed=6)
        for a in addrs:
            assert router.lookup(int(a)) == table.lookup(int(a))


class TestStatistics:
    def test_remote_vs_local_accounting(self, table):
        router = make_router(table)
        addrs = addresses_matching(table, 200, seed=7)
        for a in addrs:
            router.lookup(int(a), 0)
        s = router.stats
        assert s.lookups == 200
        # With 4 LCs, roughly 3/4 of first-seen addresses are remote.
        assert s.remote_requests > 0
        assert s.remote_replies == s.remote_requests

    def test_remote_result_cached_as_rem(self, table):
        router = make_router(table)
        addrs = [int(a) for a in addresses_matching(table, 100, seed=8)]
        remote = next(a for a in addrs if router.plan.home_lc(a) != 0)
        router.lookup(remote, 0)
        entry = router.line_cards[0].cache.peek(remote)
        assert entry is not None
        from repro.core import REM

        assert entry.mix == REM

    def test_cache_remote_results_off(self, table):
        router = make_router(table, cache_remote_results=False)
        addrs = [int(a) for a in addresses_matching(table, 100, seed=9)]
        remote = next(a for a in addrs if router.plan.home_lc(a) != 0)
        router.lookup(remote, 0)
        assert router.line_cards[0].cache.peek(remote) is None

    def test_storage_report(self, table):
        router = make_router(table)
        report = router.storage_report()
        assert report["total_bytes"] == sum(report["per_lc_bytes"])
        assert len(report["partition_sizes"]) == 4
        assert report["max_lc_bytes"] >= max(report["trie_bytes"])

    def test_partition_reduces_trie_size(self, table):
        whole = make_router(table, n_lcs=1, cache=None)
        split = make_router(table, n_lcs=8, cache=None)
        whole_bytes = whole.storage_report()["trie_bytes"][0]
        assert max(split.storage_report()["trie_bytes"]) < whole_bytes


class TestUpdates:
    def test_update_changes_lookups(self, table):
        router = make_router(table)
        prefix = Prefix.from_string("123.45.0.0/16")
        addr = 0x7B2D0001
        before = router.lookup(addr, 0)
        router.apply_update(prefix, 99)
        assert router.lookup(addr, 0) == 99
        assert router.lookup(addr, 3) == 99

    def test_update_flushes_caches(self, table):
        router = make_router(table)
        addrs = [int(a) for a in addresses_matching(table, 50, seed=10)]
        for a in addrs:
            router.lookup(a, 0)
        router.apply_update(Prefix.from_string("200.1.2.0/24"), 5)
        for lc in router.line_cards:
            assert lc.cache.occupancy() == 0
            assert lc.cache.stats.flushes == 1

    def test_delete_route(self, table):
        router = make_router(table)
        prefix = Prefix.from_string("77.0.0.0/8")
        router.apply_update(prefix, 42)
        assert router.lookup(0x4D010203, 0) == 42
        router.apply_update(prefix, None)
        assert router.lookup(0x4D010203, 1) == router.table.lookup(0x4D010203)

    def test_update_keeps_lpm_invariant(self, table):
        router = make_router(table)
        router.apply_update(Prefix.from_string("10.20.0.0/14"), 31)
        router.apply_update(Prefix.from_string("10.20.1.0/24"), 32)
        addrs = addresses_matching(router.table, 200, seed=11)
        for a in addrs:
            assert router.lookup_direct(int(a)) == router.table.lookup(int(a))
