"""Tests for the extension experiments: IPv6 storage, seed robustness,
per-LC link speeds."""

import numpy as np
import pytest

from repro.core import CacheConfig, SpalConfig
from repro.errors import SimulationError
from repro.experiments import run_ipv6_storage, run_seed_robustness
from repro.routing import random_small_table
from repro.sim import SpalSimulator
from repro.traffic import FlowPopulation, TraceSpec, generate_router_streams


class TestIPv6Storage:
    @pytest.mark.slow
    def test_rows_and_savings(self):
        result = run_ipv6_storage(size=1500)
        assert len(result.rows) == 12  # 2 tables x 3 tries x 2 psi
        for row in result.rows:
            assert row["saving_kb"] > 0
            assert row["reduction"] > 1.0

    @pytest.mark.slow
    def test_absolute_saving_larger_under_ipv6(self):
        """The paper: "the reduction amount will be much larger under IPv6"
        — per-LC byte savings for the binary trie at psi=16."""
        result = run_ipv6_storage(size=1500)
        by_key = {(r["table"], r["trie"], r["psi"]): r for r in result.rows}
        v4 = by_key[("IPv4", "binary", 16)]["saving_kb"]
        v6 = by_key[("IPv6", "binary", 16)]["saving_kb"]
        assert v6 > v4


class TestSeedRobustness:
    def test_low_variance(self):
        result = run_seed_robustness(
            trace="D_75", n_lcs=4, n_seeds=3, packets_per_lc=3000
        )
        data = [r for r in result.rows if isinstance(r["mean_cycles"], float)]
        assert len(data) == 3
        means = [r["mean_cycles"] for r in data]
        spread = (max(means) - min(means)) / (sum(means) / len(means))
        # Conclusions must not hinge on the draw: <25% relative spread.
        assert spread < 0.25
        assert result.rows[-1]["seed"] == "mean±std"


class TestPerLcSpeeds:
    @pytest.fixture
    def setup(self):
        table = random_small_table(150, seed=61)
        spec = TraceSpec("t", n_flows=400, recency=0.3, seed=2)
        pop = FlowPopulation(spec, table)
        return table, pop

    def test_mixed_speeds_run(self, setup):
        table, pop = setup
        sim = SpalSimulator(
            table, SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256))
        )
        streams = generate_router_streams(pop, 4, 800)
        result = sim.run(streams, speed_gbps=[40, 10, 40, 10])
        assert result.packets == 3200

    def test_slower_lcs_spread_arrivals(self, setup):
        table, pop = setup

        def horizon(speeds):
            sim = SpalSimulator(
                table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=256))
            )
            streams = generate_router_streams(pop, 2, 500)
            return sim.run(streams, speed_gbps=speeds).horizon_cycles

        assert horizon([10, 10]) > horizon([40, 40])

    def test_wrong_speed_count(self, setup):
        table, pop = setup
        sim = SpalSimulator(table, SpalConfig(n_lcs=4))
        streams = generate_router_streams(pop, 4, 100)
        with pytest.raises(SimulationError):
            sim.run(streams, speed_gbps=[40, 10])

    def test_unsupported_speed_value(self, setup):
        table, pop = setup
        sim = SpalSimulator(table, SpalConfig(n_lcs=2))
        streams = generate_router_streams(pop, 2, 100)
        with pytest.raises(SimulationError):
            sim.run(streams, speed_gbps=[40, 25])


class TestSimulatorReuseGuard:
    def test_second_run_rejected(self):
        table = random_small_table(60, seed=62)
        spec = TraceSpec("t", n_flows=100, seed=3)
        pop = FlowPopulation(spec, table)
        sim = SpalSimulator(table, SpalConfig(n_lcs=2))
        streams = generate_router_streams(pop, 2, 50)
        sim.run(streams)
        with pytest.raises(SimulationError):
            sim.run(generate_router_streams(pop, 2, 50))


class TestIndexFunction:
    def test_xor_index_correctness(self):
        """Lookups stay correct regardless of the index function."""
        from repro.core import LOC, LRCache

        for index in ("mod", "xor"):
            cache = LRCache(n_blocks=64, index=index, victim_blocks=0)
            for a in (0x0A000001, 0xC0A80101, 0x0A010001):
                cache.insert_complete(a, a & 0xF, LOC)
            for a in (0x0A000001, 0xC0A80101, 0x0A010001):
                assert cache.probe(a).next_hop == a & 0xF

    def test_bad_index_rejected(self):
        from repro.core import LRCache
        from repro.errors import CacheConfigError

        with pytest.raises(CacheConfigError):
            LRCache(n_blocks=64, index="hash")
        with pytest.raises(CacheConfigError):
            CacheConfig(index="hash").validate()

    def test_xor_spreads_aligned_addresses(self):
        """Addresses sharing low bits (stride = n_sets) collide under mod
        but spread under xor when their high halves differ."""
        from repro.core import LOC, LRCache

        def distinct_sets(index):
            cache = LRCache(n_blocks=64, index=index, victim_blocks=0)
            # Same low 16 bits, different high bits.
            addrs = [(i << 16) | 0x0004 for i in range(16)]
            return len({id(cache._set_of(a)) for a in addrs})

        assert distinct_sets("mod") == 1
        assert distinct_sets("xor") > 4

    def test_index_fn_experiment(self):
        from repro.experiments import run_index_function_ablation

        result = run_index_function_ablation(packets_per_lc=2000)
        assert {r["index"] for r in result.rows} == {"mod", "xor"}


class TestScorecard:
    @pytest.mark.slow
    def test_all_claims_pass_at_small_scale(self):
        from repro.experiments import run_scorecard

        result = run_scorecard(packets_per_lc=2500)
        statuses = {r["exp"]: r["status"] for r in result.rows}
        assert len(statuses) == 9
        failures = {k: v for k, v in statuses.items() if v != "PASS"}
        assert not failures, f"scorecard regressions: {failures}"


class TestVerifyMode:
    def test_verified_run_passes(self):
        table = random_small_table(100, seed=63)
        spec = TraceSpec("t", n_flows=200, seed=4)
        pop = FlowPopulation(spec, table)
        sim = SpalSimulator(
            table,
            SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=64)),
            verify=True,
        )
        result = sim.run(generate_router_streams(pop, 4, 400))
        assert result.packets == 1600

    def test_corrupted_partition_detected(self):
        table = random_small_table(100, seed=64)
        spec = TraceSpec("t", n_flows=200, seed=5)
        pop = FlowPopulation(spec, table)
        sim = SpalSimulator(table, SpalConfig(n_lcs=2, cache=None), verify=True)

        class Liar:
            def lookup(self, address):
                return -7  # never a real hop

        sim._matchers = [Liar(), Liar()]
        with pytest.raises(SimulationError, match="partition invariant"):
            sim.run(generate_router_streams(pop, 2, 50))


class TestRT1Trend:
    def test_similar_trend_claim(self):
        from repro.experiments import run_rt1_trend

        result = run_rt1_trend(packets_per_lc=3000)
        verdict = result.rows[-1]["mean_cycles"]
        assert "same_trend=True" in verdict
        # Strong correlation between the two tables' psi sweeps.
        r = float(verdict.split("r=")[1].split(",")[0])
        assert r > 0.8


class TestPacketsOverride:
    def test_env_override(self, monkeypatch):
        from repro.experiments.common import default_packets_per_lc

        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        monkeypatch.setenv("REPRO_PACKETS", "5000")
        assert default_packets_per_lc() == 5000
        monkeypatch.setenv("REPRO_PACKETS", "junk")
        assert default_packets_per_lc() == 30_000
        monkeypatch.setenv("REPRO_PACKETS", "3")
        assert default_packets_per_lc() == 100  # floored

    def test_cli_packets_flag(self, capsys, monkeypatch):
        from repro.experiments.__main__ import main

        monkeypatch.delenv("REPRO_PACKETS", raising=False)
        assert main(["--packets", "nope"]) == 2
        assert main(["--packets", "2000", "partition-bits"]) == 0
        monkeypatch.delenv("REPRO_PACKETS", raising=False)
