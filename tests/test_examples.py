"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "all match the LPM oracle" in out
    assert "applied a routing update" in out


def test_ipv6_partitioning():
    out = run_example("ipv6_partitioning.py")
    assert "LPM preserved across 16 partitions" in out
    assert "smaller per LC" in out


@pytest.mark.slow
def test_backbone_router_study():
    out = run_example("backbone_router_study.py")
    assert "SPAL speedup" in out
    assert "SRAM per LC" in out


@pytest.mark.slow
def test_trace_locality_study():
    out = run_example("trace_locality_study.py")
    assert "D_75" in out and "B_L" in out


@pytest.mark.slow
def test_routing_update_study():
    out = run_example("routing_update_study.py")
    assert "selective" in out and "flush" in out


@pytest.mark.slow
def test_capacity_planning():
    out = run_example("capacity_planning.py")
    assert "hit rate > 0.75" in out
    assert "FE backlog" in out


@pytest.mark.slow
def test_failover_demo():
    out = run_example("failover_demo.py")
    assert "lookup errors during failover: 0" in out
    assert "lose service" in out
    assert "0 unreachable" in out
    assert "conservation:" in out
