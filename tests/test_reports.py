"""Tests for the cross-structure comparison reports (tries.reports)."""

import pytest

from repro.routing import random_small_table
from repro.tries import compare_structures, render_comparison
from repro.tries.binary_trie import BinaryTrie


@pytest.fixture(scope="module")
def rows():
    table = random_small_table(300, seed=41)
    return compare_structures(table, n_addresses=500)


class TestCompareStructures:
    def test_all_default_structures_present(self, rows):
        names = {r["name"] for r in rows}
        assert {"binary", "DP", "Lulea", "LC (ff=0.25)", "multibit 16/8/8",
                "DIR-24-8"} <= names

    def test_fields_populated(self, rows):
        for row in rows:
            assert row["storage_kb"] > 0
            assert row["build_ms"] >= 0
            assert row["mean_accesses"] >= 1.0
            assert row["worst_accesses"] >= row["mean_accesses"] - 1e-9
            assert row["fe_cycles"] >= 25  # >= code-exec floor (120ns/5ns)

    def test_qualitative_orderings(self, rows):
        by_name = {r["name"]: r for r in rows}
        # Fewer accesses as structures specialize.
        assert by_name["Lulea"]["mean_accesses"] < by_name["binary"]["mean_accesses"]
        assert by_name["DIR-24-8"]["worst_accesses"] <= 2
        # The hardware design buys speed with memory.
        assert by_name["DIR-24-8"]["storage_kb"] > by_name["Lulea"]["storage_kb"]

    def test_custom_factories(self):
        table = random_small_table(50, seed=42)
        rows = compare_structures(
            table, n_addresses=100, factories={"only-binary": BinaryTrie}
        )
        assert len(rows) == 1
        assert rows[0]["name"] == "only-binary"

    def test_render(self, rows):
        text = render_comparison(rows)
        assert "storage_kb" in text
        assert "Lulea" in text
