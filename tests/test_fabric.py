"""Unit tests for the switching-fabric models."""

import pytest

from repro.errors import SimulationError
from repro.core import (
    CrossbarFabric,
    IdealFabric,
    MultistageFabric,
    SharedBusFabric,
    default_fabric,
)


class TestIdealFabric:
    def test_zero_latency_no_contention(self):
        f = IdealFabric(4)
        assert f.transfer(0, 1, 100) == 100
        assert f.transfer(0, 1, 100) == 100  # no serialization
        assert f.messages == 2


class TestSharedBus:
    def test_global_serialization(self):
        f = SharedBusFabric(4)
        assert f.transfer(0, 1, 10) == 11
        # A second message at the same time waits for the bus.
        assert f.transfer(2, 3, 10) == 12

    def test_reset(self):
        f = SharedBusFabric(2)
        f.transfer(0, 1, 5)
        f.reset()
        assert f.messages == 0
        assert f.transfer(0, 1, 0) == 1


class TestCrossbar:
    def test_transit_latency(self):
        f = CrossbarFabric(8, transit_cycles=2)
        assert f.transfer(0, 1, 10) == 12

    def test_port_serialization(self):
        f = CrossbarFabric(8, transit_cycles=2)
        # Same source port: second departs a cycle later.
        assert f.transfer(0, 1, 10) == 12
        assert f.transfer(0, 2, 10) == 13
        # Same destination port: arrivals serialize too.
        f2 = CrossbarFabric(8, transit_cycles=0)
        assert f2.transfer(0, 3, 10) == 10
        assert f2.transfer(1, 3, 10) == 11

    def test_distinct_ports_parallel(self):
        f = CrossbarFabric(8, transit_cycles=1)
        assert f.transfer(0, 1, 10) == 11
        assert f.transfer(2, 3, 10) == 11

    def test_negative_latency_rejected(self):
        with pytest.raises(SimulationError):
            CrossbarFabric(4, transit_cycles=-1)


class TestMultistage:
    def test_stage_count(self):
        assert MultistageFabric(16, radix=4).stages == 2
        assert MultistageFabric(64, radix=4).stages == 3
        assert MultistageFabric(2, radix=4).stages == 1

    def test_latency_scales_with_stages(self):
        f = MultistageFabric(64, radix=4, hop_cycles=2)
        assert f.latency_cycles() == 6

    def test_validation(self):
        with pytest.raises(SimulationError):
            MultistageFabric(8, radix=1)
        with pytest.raises(SimulationError):
            MultistageFabric(8, hop_cycles=0)


class TestDefaultFabric:
    def test_sizing_rule(self):
        assert default_fabric(2).name == "bus"
        assert default_fabric(4).name == "bus"
        assert default_fabric(8).name == "crossbar"
        assert default_fabric(16).name == "crossbar"
        assert default_fabric(32).name == "multistage"

    def test_zero_lcs_rejected(self):
        with pytest.raises(SimulationError):
            default_fabric(0)
