"""Tests for optimal fixed-stride selection (tries.stride_opt)."""

import numpy as np
import pytest

from repro.routing import RoutingTable, random_small_table
from repro.tries import MultibitTrie
from repro.tries.stride_opt import (
    internal_nodes_per_depth,
    nodes_per_depth,
    optimal_strides,
)


@pytest.fixture(scope="module")
def table():
    return random_small_table(400, seed=91)


class TestNodesPerDepth:
    def test_root_always_one(self, table):
        counts = nodes_per_depth(table)
        assert counts[0] == 1
        assert len(counts) == 33

    def test_total_matches_binary_trie(self, table):
        from repro.tries import BinaryTrie

        counts = nodes_per_depth(table)
        assert sum(counts) == BinaryTrie(table).node_count

    def test_internal_counts_bounded_by_totals(self, table):
        totals = nodes_per_depth(table)
        internals = internal_nodes_per_depth(table)
        assert all(i <= t for i, t in zip(internals[1:], totals[1:]))
        assert internals[0] == 1

    def test_empty_table(self):
        counts = nodes_per_depth(RoutingTable())
        assert counts[0] == 1
        assert sum(counts) == 1


class TestOptimalStrides:
    def test_strides_cover_width(self, table):
        for k in (2, 3, 4):
            strides, _ = optimal_strides(table, max_levels=k)
            assert sum(strides) == 32
            assert all(s > 0 for s in strides)

    def test_dp_estimate_matches_built_trie(self, table):
        """The DP cost model must agree exactly with the constructed
        multibit trie's entry count."""
        for k in (2, 3, 4):
            strides, entries = optimal_strides(table, max_levels=k)
            built = MultibitTrie(table, strides=tuple(strides))
            assert built.entry_count == entries

    def test_memory_no_worse_than_default(self, table):
        strides, _ = optimal_strides(table, max_levels=3)
        default = MultibitTrie(table, strides=(16, 8, 8))
        optimal = MultibitTrie(table, strides=tuple(strides))
        assert optimal.entry_count <= default.entry_count

    def test_more_levels_never_cost_more_memory(self, table):
        totals = [optimal_strides(table, max_levels=k)[1] for k in (2, 3, 4, 5)]
        assert all(a >= b for a, b in zip(totals, totals[1:]))

    def test_correct_lookups_with_optimal_strides(self, table):
        strides, _ = optimal_strides(table, max_levels=4)
        trie = MultibitTrie(table, strides=tuple(strides))
        rng = np.random.default_rng(1)
        for a in rng.integers(0, 1 << 32, size=300):
            assert trie.lookup(int(a)) == table.lookup(int(a))

    def test_shallow_table_single_level(self):
        # A table no deeper than max_stride fits one real level; the tail
        # levels are free (never descended).
        shallow = random_small_table(30, seed=92, max_length=10)
        strides, entries = optimal_strides(shallow, max_levels=1)
        assert strides[0] == 10
        assert entries == 1 << 10
        trie = MultibitTrie(shallow, strides=tuple(strides))
        assert trie.entry_count == entries

    def test_deep_table_single_level_infeasible(self, table):
        with pytest.raises(ValueError):
            optimal_strides(table, max_levels=1)  # 32 bits > max_stride

    def test_validation(self, table):
        with pytest.raises(ValueError):
            optimal_strides(table, max_levels=0)
        with pytest.raises(ValueError):
            optimal_strides(table, max_stride=0)


class TestStrideExperiment:
    @pytest.mark.slow
    def test_optimum_beats_habit(self):
        from repro.experiments import run_stride_optimization

        result = run_stride_optimization()
        for table in ("RT_1", "RT_2"):
            rows = [r for r in result.rows if r["table"] == table]
            habit = next(r for r in rows if "habit" in r["strides"])
            opt3 = next(
                r for r in rows
                if r["levels"] == 3 and "habit" not in r["strides"]
            )
            assert opt3["entries"] <= habit["entries"]
        # More levels always at least as compact.
        rt1 = [r for r in result.rows
               if r["table"] == "RT_1" and "habit" not in r["strides"]]
        entries = [r["entries"] for r in sorted(rt1, key=lambda r: r["levels"])]
        assert all(a >= b for a, b in zip(entries, entries[1:]))
