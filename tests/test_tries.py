"""Correctness tests for every LPM structure against the table oracle."""

import numpy as np
import pytest

from repro.errors import TrieError
from repro.routing import (
    Prefix,
    RoutingTable,
    addresses_matching,
    random_small_table,
)
from repro.tries import (
    BinaryTrie,
    Dir24_8,
    DPTrie,
    HashReferenceMatcher,
    LCTrie,
    LuleaTrie,
    MultibitTrie,
)

ALL_MATCHERS = [
    ("binary", BinaryTrie),
    ("dp", DPTrie),
    ("lulea", LuleaTrie),
    ("lc", LCTrie),
    ("multibit", MultibitTrie),
    ("dir24", lambda t: Dir24_8(t, first_stride=16)),
    ("ref", HashReferenceMatcher),
]


def probe_addresses(table, n=400, seed=0):
    """Mix of covered addresses and uniform random ones."""
    covered = addresses_matching(table, n // 2, seed=seed)
    rng = np.random.default_rng(seed + 1)
    uniform = rng.integers(0, 1 << 32, size=n // 2, dtype=np.uint64)
    return np.concatenate([covered, uniform])


@pytest.fixture(scope="module")
def small_table():
    return random_small_table(120, seed=5)


@pytest.fixture(scope="module")
def no_default_table():
    return random_small_table(80, seed=6, include_default=False)


@pytest.fixture(scope="module")
def clustered_table():
    from repro.routing import make_rt1

    return make_rt1(size=2500)


@pytest.mark.parametrize("name,factory", ALL_MATCHERS)
class TestAgainstOracle:
    def test_small_table(self, name, factory, small_table):
        matcher = factory(small_table)
        for a in probe_addresses(small_table, 400, seed=10):
            assert matcher.lookup(int(a)) == small_table.lookup(int(a)), name

    def test_no_default_route(self, name, factory, no_default_table):
        matcher = factory(no_default_table)
        for a in probe_addresses(no_default_table, 400, seed=11):
            assert matcher.lookup(int(a)) == no_default_table.lookup(int(a)), name

    @pytest.mark.slow
    def test_clustered_table(self, name, factory, clustered_table):
        matcher = factory(clustered_table)
        for a in probe_addresses(clustered_table, 300, seed=12):
            assert matcher.lookup(int(a)) == clustered_table.lookup(int(a)), name

    def test_storage_positive(self, name, factory, small_table):
        matcher = factory(small_table)
        assert matcher.storage_bytes() > 0

    def test_access_counting(self, name, factory, small_table):
        matcher = factory(small_table)
        mean, worst = matcher.measure(
            [int(a) for a in probe_addresses(small_table, 100, seed=13)]
        )
        assert mean >= 1.0
        assert worst >= mean
        assert matcher.counter.lookups == 100


class TestEdgeTables:
    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_single_default_route(self, name, factory):
        table = RoutingTable.from_strings([("0.0.0.0/0", 7)])
        matcher = factory(table)
        assert matcher.lookup(0) == 7
        assert matcher.lookup(0xFFFFFFFF) == 7

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_single_host_route(self, name, factory):
        table = RoutingTable.from_strings([("1.2.3.4/32", 9)])
        matcher = factory(table)
        assert matcher.lookup(0x01020304) == 9
        assert matcher.lookup(0x01020305) == -1

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_nested_chain(self, name, factory):
        table = RoutingTable.from_strings(
            [
                ("0.0.0.0/0", 0),
                ("128.0.0.0/1", 1),
                ("192.0.0.0/2", 2),
                ("192.0.0.0/8", 3),
                ("192.168.0.0/16", 4),
                ("192.168.5.0/24", 5),
                ("192.168.5.17/32", 6),
            ]
        )
        matcher = factory(table)
        assert matcher.lookup(0x40000000) == 0
        assert matcher.lookup(0x80000000) == 1
        assert matcher.lookup(0xC1000000) == 2
        assert matcher.lookup(0xC0000001) == 3
        assert matcher.lookup(0xC0A80000) == 4
        assert matcher.lookup(0xC0A80501) == 5
        assert matcher.lookup(0xC0A80511) == 6

    @pytest.mark.parametrize("name,factory", ALL_MATCHERS)
    def test_adjacent_siblings(self, name, factory):
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.128.0.0/9", 2), ("11.0.0.0/8", 3)]
        )
        matcher = factory(table)
        assert matcher.lookup(0x0A000001) == 1
        assert matcher.lookup(0x0A800001) == 2
        assert matcher.lookup(0x0B000001) == 3
        assert matcher.lookup(0x0C000001) == -1


class TestBinaryTrieIncremental:
    def test_insert_delete_roundtrip(self):
        table = random_small_table(60, seed=9)
        trie = BinaryTrie(table)
        victim = table.prefixes()[10]
        hop = table.get(victim)
        assert trie.delete(victim) == hop
        table2 = table.copy()
        table2.remove(victim)
        for a in probe_addresses(table, 200, seed=14):
            assert trie.lookup(int(a)) == table2.lookup(int(a))
        trie.insert(victim, hop)
        for a in probe_addresses(table, 200, seed=15):
            assert trie.lookup(int(a)) == table.lookup(int(a))

    def test_delete_missing_raises(self):
        trie = BinaryTrie(RoutingTable.from_strings([("10.0.0.0/8", 1)]))
        with pytest.raises(TrieError):
            trie.delete(Prefix.from_string("11.0.0.0/8"))

    def test_node_pruning(self):
        trie = BinaryTrie(width=32)
        p = Prefix.from_string("10.0.0.0/8")
        trie.insert(p, 1)
        n = trie.node_count
        trie.delete(p)
        assert trie.node_count == 1  # only the root remains
        assert n == 9

    def test_walk_returns_routes(self):
        table = random_small_table(40, seed=11)
        trie = BinaryTrie(table)
        assert sorted(trie.walk()) == sorted(table.routes())

    def test_len(self):
        table = random_small_table(40, seed=11)
        assert len(BinaryTrie(table)) == len(table)


class TestLulea:
    def test_storage_smaller_than_multibit(self):
        table = random_small_table(500, seed=20)
        lulea = LuleaTrie(table)
        mb = MultibitTrie(table)
        assert lulea.storage_bytes() < mb.storage_bytes()

    def test_rejects_unaligned_width(self):
        # Widths must be 16 + 8k (IPv4 32 and IPv6 128 both qualify).
        with pytest.raises(TrieError):
            LuleaTrie(RoutingTable(width=20))
        with pytest.raises(TrieError):
            LuleaTrie(RoutingTable(width=8))

    def test_ipv6_width_supported(self):
        from repro.routing import ipv6_addresses_matching, make_ipv6_table

        table = make_ipv6_table(400, seed=5)
        trie = LuleaTrie(table)
        for addr in ipv6_addresses_matching(table, 200, seed=6):
            assert trie.lookup(addr) == table.lookup(addr)
        # Deepest tier is /64: level 1 + 6 chunk levels at most.
        trie.measure(ipv6_addresses_matching(table, 100, seed=7))
        assert trie.counter.max_accesses <= 4 * 7

    def test_chunk_kinds(self):
        from repro.routing import make_rt1

        table = make_rt1(size=3000)
        lulea = LuleaTrie(table)
        hist = lulea.chunk_kind_histogram()
        assert sum(hist.values()) == lulea.chunk_count
        assert lulea.chunk_count > 0

    def test_access_counts_bounded(self):
        table = random_small_table(400, seed=21)
        lulea = LuleaTrie(table)
        mean, worst = lulea.measure(
            [int(a) for a in probe_addresses(table, 300, seed=22)]
        )
        assert 4 <= mean <= 12
        assert worst <= 12


class TestLCTrie:
    def test_fill_factor_validation(self):
        table = random_small_table(10, seed=1)
        with pytest.raises(TrieError):
            LCTrie(table, fill_factor=0.0)
        with pytest.raises(TrieError):
            LCTrie(table, fill_factor=1.5)

    def test_higher_fill_factor_fewer_nodes(self):
        table = random_small_table(800, seed=23)
        loose = LCTrie(table, fill_factor=0.25)
        tight = LCTrie(table, fill_factor=1.0)
        assert tight.node_count <= loose.node_count

    def test_root_branch_override(self):
        table = random_small_table(200, seed=24)
        trie = LCTrie(table, root_branch=8)
        for a in probe_addresses(table, 200, seed=25):
            assert trie.lookup(int(a)) == table.lookup(int(a))

    def test_empty_table(self):
        trie = LCTrie(RoutingTable())
        assert trie.lookup(0x01020304) == -1

    def test_default_only(self):
        trie = LCTrie(RoutingTable.from_strings([("0.0.0.0/0", 3)]))
        assert trie.lookup(0xDEADBEEF) == 3


class TestDir24_8:
    def test_two_access_worst_case(self):
        table = random_small_table(200, seed=26)
        d = Dir24_8(table, first_stride=16)
        d.measure([int(a) for a in probe_addresses(table, 200, seed=27)])
        assert d.counter.max_accesses <= 2

    def test_full_size_storage_exceeds_32mb(self):
        # The paper: "The memory requirement of this hardware design is huge
        # (> 32 Mbytes)" — structural property of the 2^24 first level.
        table = RoutingTable.from_strings([("10.0.0.0/8", 1), ("10.0.0.1/32", 2)])
        d = Dir24_8(table)  # default first_stride=24
        assert d.storage_bytes() > 32 * 1024 * 1024

    def test_rejects_bad_stride(self):
        with pytest.raises(TrieError):
            Dir24_8(RoutingTable(), first_stride=0)


class TestMultibit:
    def test_stride_validation(self):
        table = RoutingTable()
        with pytest.raises(TrieError):
            MultibitTrie(table, strides=(16, 8))
        with pytest.raises(TrieError):
            MultibitTrie(table, strides=(16, 8, 8, 0))

    def test_custom_strides(self):
        table = random_small_table(150, seed=28)
        trie = MultibitTrie(table, strides=(8, 8, 8, 8))
        for a in probe_addresses(table, 200, seed=29):
            assert trie.lookup(int(a)) == table.lookup(int(a))

    def test_accesses_at_most_levels(self):
        table = random_small_table(150, seed=28)
        trie = MultibitTrie(table, strides=(16, 8, 8))
        trie.measure([int(a) for a in probe_addresses(table, 100, seed=30)])
        assert trie.counter.max_accesses <= 3

    def test_shorter_after_longer_insert(self):
        # Regression: inserting a covering route after a nested one must
        # repaint inherited slots in existing children.
        table = RoutingTable()
        trie = MultibitTrie(table)
        trie.insert(Prefix.from_string("10.0.0.0/8"), 1)
        trie.insert(Prefix.from_string("10.1.1.0/24"), 2)
        trie.insert(Prefix.from_string("10.0.0.0/12"), 3)
        assert trie.lookup(0x0A080101) == 3  # under /12, repainted child
        assert trie.lookup(0x0A010101) == 2  # /24 still wins
        assert trie.lookup(0x0A800001) == 1  # outside /12, /8 applies


class TestDPTrie:
    def test_incremental_matches_bulk(self):
        table = random_small_table(100, seed=31)
        bulk = DPTrie(table)
        inc = DPTrie(width=32)
        for prefix, hop in table.routes():
            inc.insert(prefix, hop)
        for a in probe_addresses(table, 300, seed=32):
            assert bulk.lookup(int(a)) == inc.lookup(int(a)) == table.lookup(int(a))

    def test_delete(self):
        table = random_small_table(50, seed=33)
        trie = DPTrie(table)
        victim = table.prefixes()[5]
        trie.delete(victim)
        reduced = table.copy()
        reduced.remove(victim)
        for a in probe_addresses(table, 200, seed=34):
            assert trie.lookup(int(a)) == reduced.lookup(int(a))

    def test_delete_missing_raises(self):
        trie = DPTrie(RoutingTable.from_strings([("10.0.0.0/8", 1)]))
        with pytest.raises(TrieError):
            trie.delete(Prefix.from_string("11.0.0.0/8"))

    def test_storage_model_21_bytes_per_node(self):
        table = random_small_table(60, seed=35)
        trie = DPTrie(table)
        assert trie.storage_bytes() >= trie.node_count * 21
