"""Tests for update streams, selective invalidation and the E10 runners."""

import pytest

from repro.core import LOC, REM, CacheConfig, LRCache, SpalConfig, SpalRouter
from repro.errors import SimulationError
from repro.routing import (
    Prefix,
    RouteUpdate,
    UpdateMix,
    generate_updates,
    random_small_table,
)


@pytest.fixture
def table():
    return random_small_table(200, seed=21)


class TestUpdateStream:
    def test_count_and_determinism(self, table):
        a = list(generate_updates(table, 50, seed=5))
        b = list(generate_updates(table, 50, seed=5))
        assert len(a) == 50
        assert a == b

    def test_mix_kinds_present(self, table):
        updates = list(generate_updates(table, 400, seed=6))
        withdrawals = sum(1 for u in updates if u.is_withdrawal)
        announces = len(updates) - withdrawals
        assert withdrawals > 0
        assert announces > withdrawals  # modifies dominate

    def test_applicable_in_order(self, table):
        """The stream must apply cleanly: no withdrawal of absent routes."""
        router = SpalRouter(
            table.copy(),
            SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=64)),
        )
        for update in generate_updates(table, 150, seed=7):
            if update.is_withdrawal and update.prefix not in router.table:
                pytest.fail("withdrawal of an absent prefix")
            if update.is_withdrawal:
                router.apply_update(update.prefix, None)
            else:
                router.apply_update(update.prefix, update.next_hop)

    def test_churn_concentration(self, table):
        updates = list(
            generate_updates(table, 300, seed=8, churn_fraction=0.02)
        )
        touched = {u.prefix for u in updates if not u.is_withdrawal}
        # Most updates hit the small churn set (plus a few new prefixes).
        assert len(touched) < 60

    def test_validation(self, table):
        with pytest.raises(ValueError):
            list(generate_updates(table, -1))
        with pytest.raises(ValueError):
            list(generate_updates(table, 5, churn_fraction=0.0))
        from repro.routing import RoutingTable

        empty = RoutingTable()
        empty.update(Prefix.default(), 0)
        with pytest.raises(ValueError):
            list(generate_updates(empty, 5))

    def test_update_mix_normalization(self):
        mix = UpdateMix(modify=2, withdraw=1, announce=1, new=0)
        assert sum(mix.normalized()) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            UpdateMix(0, 0, 0, 0).normalized()


class TestSelectiveInvalidation:
    def test_drops_only_covered_entries(self):
        cache = LRCache(n_blocks=64, victim_blocks=4)
        inside = [0x0A000001, 0x0A0000FF, 0x0AFFFFFF]
        outside = [0x0B000001, 0xC0A80001]
        for a in inside + outside:
            cache.insert_complete(a, 1, LOC)
        dropped = cache.invalidate_matching(Prefix.from_string("10.0.0.0/8"))
        assert dropped == len(inside)
        assert all(cache.peek(a) is None for a in inside)
        assert all(cache.peek(a) is not None for a in outside)

    def test_waiting_entries_survive(self):
        cache = LRCache(n_blocks=64, victim_blocks=0)
        entry = cache.allocate(0x0A000001, REM)
        cache.insert_complete(0x0A000002 % 16, 1, LOC)
        cache.invalidate_matching(Prefix.default())
        assert cache.peek(0x0A000001) is entry  # W=1 entries stay

    def test_victim_cache_also_invalidated(self):
        cache = LRCache(n_blocks=8, associativity=4, victim_blocks=4, mix=0.0)
        # Fill set 0 beyond capacity to push an entry into the victim cache.
        for a in (0x0A000000, 0x0A000002, 0x0A000004, 0x0A000006, 0x0A000008):
            cache.insert_complete(a, 1, LOC)
        assert len(cache.victim) == 1
        cache.invalidate_matching(Prefix.from_string("10.0.0.0/8"))
        assert len(cache.victim) == 0

    def test_router_selective_policy(self, table):
        router = SpalRouter(
            table.copy(), SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=64))
        )
        # Warm the caches with two disjoint destinations.
        router.lookup(0x0A000001, 0)
        router.lookup(0xC0000001, 0)
        router.apply_update(
            Prefix.from_string("10.0.0.0/8"), 9, invalidation="selective"
        )
        cache = router.line_cards[0].cache
        assert cache.peek(0x0A000001) is None
        assert cache.peek(0xC0000001) is not None
        assert router.lookup(0x0A000001, 0) == 9

    def test_router_rejects_unknown_policy(self, table):
        router = SpalRouter(table.copy(), SpalConfig(n_lcs=2))
        with pytest.raises(SimulationError):
            router.apply_update(Prefix.from_string("10.0.0.0/8"), 1,
                                invalidation="sometimes")


class TestSimulatorUpdateEvents:
    def test_selective_events_cheaper_than_flush(self, table):
        from repro.sim import SpalSimulator
        from repro.traffic import FlowPopulation, TraceSpec, generate_router_streams

        spec = TraceSpec("t", n_flows=300, recency=0.3, seed=1)
        pop = FlowPopulation(spec, table)

        def run(policy):
            sim = SpalSimulator(
                table, SpalConfig(n_lcs=2, cache=CacheConfig(n_blocks=256))
            )
            streams = generate_router_streams(pop, 2, 2000)
            cycles = list(range(1000, 20000, 1000))
            if policy == "flush":
                return sim.run(streams, flush_cycles=cycles)
            updates = list(generate_updates(table, len(cycles), seed=3))
            events = [(t, u.prefix) for t, u in zip(cycles, updates)]
            return sim.run(streams, update_events=events)

        flush = run("flush")
        selective = run("selective")
        assert selective.mean_lookup_cycles <= flush.mean_lookup_cycles


class TestUpdateExperiments:
    def test_update_sensitivity_degrades_with_rate(self):
        from repro.experiments import run_update_sensitivity

        result = run_update_sensitivity(packets_per_lc=3000, n_lcs=2)
        first = result.rows[0]["mean_cycles"]
        last = result.rows[-1]["mean_cycles"]
        assert last > first

    def test_invalidation_comparison(self):
        from repro.experiments import run_invalidation_comparison

        result = run_invalidation_comparison(packets_per_lc=3000, n_lcs=2)
        by_key = {(r["updates_per_s"], r["policy"]): r for r in result.rows}
        rate = 50_000
        assert (
            by_key[(rate, "selective")]["mean_cycles"]
            <= by_key[(rate, "flush")]["mean_cycles"]
        )
