"""Stateful property tests: dynamic tries vs a model under random
insert/delete/lookup interleavings (hypothesis RuleBasedStateMachine)."""

from hypothesis import settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.routing import Prefix, RoutingTable
from repro.tries import BinaryTrie, DPTrie, HashReferenceMatcher

WIDTH = 16  # small width keeps the explored space dense

prefix_st = st.builds(
    lambda value, length: Prefix(
        value & (((1 << length) - 1) << (WIDTH - length) if length else 0),
        length,
        WIDTH,
    ),
    st.integers(0, (1 << WIDTH) - 1),
    st.integers(0, WIDTH),
)
address_st = st.integers(0, (1 << WIDTH) - 1)
hop_st = st.integers(0, 15)


class _TrieMachine(RuleBasedStateMachine):
    """Drive a trie and the RoutingTable oracle with the same operations."""

    trie_factory = None  # set by subclasses

    def __init__(self):
        super().__init__()
        self.model = RoutingTable(WIDTH)
        self.trie = self.trie_factory(width=WIDTH)

    @rule(prefix=prefix_st, hop=hop_st)
    def insert(self, prefix, hop):
        self.model.update(prefix, hop)
        self.trie.insert(prefix, hop)

    @precondition(lambda self: len(self.model) > 0)
    @rule(data=st.data())
    def delete(self, data):
        prefix = data.draw(st.sampled_from(self.model.prefixes()))
        self.model.remove(prefix)
        self.trie.delete(prefix)

    @rule(address=address_st)
    def lookup(self, address):
        assert self.trie.lookup(address) == self.model.lookup(address)

    @invariant()
    def sizes_agree(self):
        if hasattr(self.trie, "__len__"):
            assert len(self.trie) == len(self.model)


class BinaryTrieMachine(_TrieMachine):
    trie_factory = staticmethod(lambda width: BinaryTrie(width=width))


class DPTrieMachine(_TrieMachine):
    trie_factory = staticmethod(lambda width: DPTrie(width=width))


class HashRefMachine(_TrieMachine):
    trie_factory = staticmethod(lambda width: HashReferenceMatcher(width=width))

    @invariant()
    def sizes_agree(self):  # HashReferenceMatcher has no __len__
        pass


TestBinaryTrieStateful = BinaryTrieMachine.TestCase
TestDPTrieStateful = DPTrieMachine.TestCase
TestHashRefStateful = HashRefMachine.TestCase

for case in (TestBinaryTrieStateful, TestDPTrieStateful, TestHashRefStateful):
    case.settings = settings(
        max_examples=40, stateful_step_count=30, deadline=None
    )
