"""Unit tests for repro.routing.table and textio."""

import pytest

from repro.errors import TableError
from repro.routing import NO_ROUTE, Prefix, RoutingTable, textio


@pytest.fixture
def paper_table():
    """The 7-prefix example from Sec. 3.1 of the paper (8-bit width)."""
    routes = [
        ("101*", 1),      # P1
        ("1011*", 2),     # P2
        ("01*", 3),       # P3
        ("001110*", 4),   # P4
        ("10010011", 5),  # P5
        ("10011*", 6),    # P6
        ("011001*", 7),   # P7
    ]
    return RoutingTable.from_strings(routes, width=8)


class TestMutation:
    def test_add_and_len(self, paper_table):
        assert len(paper_table) == 7

    def test_add_duplicate_raises(self, paper_table):
        with pytest.raises(TableError):
            paper_table.add(Prefix.from_string("101*", width=8), 9)

    def test_update_overwrites(self, paper_table):
        p = Prefix.from_string("101*", width=8)
        paper_table.update(p, 9)
        assert paper_table.get(p) == 9
        assert len(paper_table) == 7

    def test_remove(self, paper_table):
        p = Prefix.from_string("101*", width=8)
        assert paper_table.remove(p) == 1
        assert p not in paper_table
        with pytest.raises(TableError):
            paper_table.remove(p)

    def test_width_mismatch(self, paper_table):
        with pytest.raises(TableError):
            paper_table.add(Prefix.from_string("10.0.0.0/8"), 1)

    def test_version_bumps(self, paper_table):
        v = paper_table.version
        paper_table.update(Prefix.from_string("111*", width=8), 1)
        assert paper_table.version == v + 1


class TestLookup:
    def test_longest_wins(self, paper_table):
        # 1011xxxx matches P1 (101*) and P2 (1011*): P2 wins.
        assert paper_table.lookup(0b10110000) == 2

    def test_shorter_when_no_longer(self, paper_table):
        # 1010xxxx matches only P1.
        assert paper_table.lookup(0b10100000) == 1

    def test_exact_32bit_prefix(self, paper_table):
        assert paper_table.lookup(0b10010011) == 5

    def test_no_route(self, paper_table):
        assert paper_table.lookup(0b11000000) == NO_ROUTE

    def test_default_route_catches_all(self, paper_table):
        paper_table.update(Prefix.default(8), 99)
        assert paper_table.lookup(0b11000000) == 99
        assert paper_table.lookup(0b10110000) == 2  # still longest

    def test_lookup_prefix(self, paper_table):
        p = paper_table.lookup_prefix(0b10110000)
        assert p == Prefix.from_string("1011*", width=8)
        assert paper_table.lookup_prefix(0b11000000) is None


class TestQueries:
    def test_length_histogram(self, paper_table):
        hist = paper_table.length_histogram()
        assert hist == {2: 1, 3: 1, 4: 1, 5: 1, 6: 2, 8: 1}

    def test_next_hops(self, paper_table):
        assert set(paper_table.next_hops()) == set(range(1, 8))

    def test_has_default_route(self, paper_table):
        assert not paper_table.has_default_route()
        paper_table.update(Prefix.default(8), 0)
        assert paper_table.has_default_route()

    def test_copy_is_independent(self, paper_table):
        clone = paper_table.copy()
        clone.remove(Prefix.from_string("101*", width=8))
        assert len(paper_table) == 7
        assert len(clone) == 6

    def test_iteration_order_is_insertion(self, paper_table):
        prefixes = paper_table.prefixes()
        assert prefixes[0] == Prefix.from_string("101*", width=8)
        assert prefixes[-1] == Prefix.from_string("011001*", width=8)


class TestTextIO:
    def test_roundtrip(self, tmp_path):
        table = RoutingTable.from_strings(
            [("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("0.0.0.0/0", 0)]
        )
        path = tmp_path / "routes.txt"
        textio.save(table, path)
        loaded = textio.load(path)
        assert len(loaded) == 3
        assert loaded.lookup(0x0A010101) == 2

    def test_comments_and_blanks(self):
        table = textio.loads("# comment\n\n10.0.0.0/8 1  # trailing\n")
        assert len(table) == 1

    def test_bad_line(self):
        with pytest.raises(TableError):
            textio.loads("10.0.0.0/8\n")
        with pytest.raises(TableError):
            textio.loads("10.0.0.0/8 xyz\n")
