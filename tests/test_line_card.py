"""Unit tests for the functional line-card model (FE + LR-cache)."""

import pytest

from repro.core import CacheConfig, LOC, REM
from repro.core.line_card import ForwardingEngine, LineCard
from repro.routing import Prefix, random_small_table
from repro.tries import BinaryTrie


@pytest.fixture
def table():
    return random_small_table(80, seed=31)


class TestForwardingEngine:
    def test_lookup_counts(self, table):
        fe = ForwardingEngine(table, BinaryTrie)
        addr = 0x0A000001
        assert fe.lookup(addr) == table.lookup(addr)
        fe.lookup(addr)
        assert fe.stats.lookups == 2

    def test_rebuild_after_update(self, table):
        fe = ForwardingEngine(table, BinaryTrie)
        prefix = Prefix.from_string("250.0.0.0/8")
        table.update(prefix, 42)
        # Stale until rebuilt (static structure semantics).
        fe.rebuild()
        assert fe.lookup(0xFA000001) == 42

    def test_storage(self, table):
        fe = ForwardingEngine(table, BinaryTrie)
        assert fe.storage_bytes() == BinaryTrie(table).storage_bytes()

    def test_stats_reset(self, table):
        fe = ForwardingEngine(table, BinaryTrie)
        fe.lookup(1)
        fe.stats.reset()
        assert fe.stats.lookups == 0


class TestLineCard:
    def make(self, table, cache=True):
        config = CacheConfig(n_blocks=64, victim_blocks=4) if cache else None
        return LineCard(0, table, BinaryTrie, cache_config=config)

    def test_lookup_local_correct(self, table):
        lc = self.make(table)
        addr = 0x0A000001
        assert lc.lookup_local(addr) == table.lookup(addr)

    def test_second_lookup_hits_cache(self, table):
        lc = self.make(table)
        addr = 0x0A000001
        lc.lookup_local(addr)
        fe_before = lc.fe.stats.lookups
        lc.lookup_local(addr)
        assert lc.fe.stats.lookups == fe_before  # served from LR-cache

    def test_no_cache_always_fe(self, table):
        lc = self.make(table, cache=False)
        addr = 0x0A000001
        lc.lookup_local(addr)
        lc.lookup_local(addr)
        assert lc.fe.stats.lookups == 2

    def test_record_remote(self, table):
        lc = self.make(table)
        lc.record_remote(0xC0000001, 7)
        entry = lc.cache.peek(0xC0000001)
        assert entry is not None
        assert entry.mix == REM
        assert entry.next_hop == 7

    def test_record_remote_without_cache_is_noop(self, table):
        lc = self.make(table, cache=False)
        lc.record_remote(0xC0000001, 7)  # must not raise

    def test_flush(self, table):
        lc = self.make(table)
        lc.lookup_local(0x0A000001)
        lc.flush_cache()
        assert lc.cache.occupancy() == 0

    def test_storage_includes_cache(self, table):
        with_cache = self.make(table)
        without = self.make(table, cache=False)
        assert (
            with_cache.storage_bytes()
            == without.storage_bytes() + with_cache.cache.storage_bytes()
        )

    def test_invalid_cache_config_rejected(self, table):
        from repro.errors import CacheConfigError

        with pytest.raises(CacheConfigError):
            LineCard(0, table, BinaryTrie, cache_config=CacheConfig(mix=9.0))

    def test_local_results_marked_loc(self, table):
        lc = self.make(table)
        addr = 0x0A000001
        lc.lookup_local(addr, mix=LOC)
        assert lc.cache.peek(addr).mix == LOC
