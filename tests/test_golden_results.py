"""Golden-result snapshots: replay pinned scenarios and diff every field.

``tests/golden/*.json`` pins the full :func:`tests.conftest.result_digest`
of six small-but-representative runs — IPv4 and IPv6, each clean, under
fault injection, and under live churn.  The tier-1 test replays each
scenario with **both** engines and diffs against the snapshot, so any
drift in simulation semantics (not just scalar/array divergence) fails
loudly with the first differing field.

Regenerate after an *intentional* semantic change with::

    PYTHONPATH=src python scripts/gen_golden.py

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import CacheConfig, FaultSchedule, SpalConfig
from repro.routing import random_small_table
from repro.routing.churn import generate_churn
from repro.sim import SpalSimulator

from .conftest import result_digest

GOLDEN_DIR = Path(__file__).parent / "golden"


def _ipv4_table():
    return random_small_table(80, seed=44, max_length=20)


def _ipv6_table():
    return random_small_table(40, seed=18, max_length=48, width=128)


def _faults():
    return (
        FaultSchedule(seed=3)
        .fail_lc(600, 1)
        .recover_lc(2600, 1)
        .degrade_fabric(900, 1700, extra_latency=2, drop_prob=0.15)
    )


def _streams(n_lcs, n_packets, seed, v6=False):
    rng = np.random.default_rng(seed)
    # A narrow address space gives real temporal locality, so the
    # snapshots pin hit/eviction/waiting behaviour, not just misses.
    raw = rng.integers(0, 120, size=(n_lcs, n_packets))
    if v6:
        return [
            np.array([(0x2001 << 112) | int(x) for x in row], dtype=object)
            for row in raw
        ]
    return [row.astype(np.uint64) for row in raw]


def _build(name):
    """(table, config, streams, run_kwargs) for a scenario name."""
    v6 = name.startswith("ipv6")
    table = _ipv6_table() if v6 else _ipv4_table()
    cache = CacheConfig(n_blocks=64, victim_blocks=4)
    config = SpalConfig(n_lcs=3, cache=cache, replicas=2)
    streams = _streams(3, 250, seed=21 if v6 else 12, v6=v6)
    kwargs = {"name": name}
    if name.endswith("faults"):
        kwargs["faults"] = _faults()
    elif name.endswith("churn"):
        kwargs["updates"] = generate_churn(
            table, rate_per_s=4_000_000, horizon_cycles=5000, seed=6
        )
        kwargs["update_policy"] = "selective"
    return table, config, streams, kwargs


SCENARIOS = [
    "ipv4-clean", "ipv4-faults", "ipv4-churn",
    "ipv6-clean", "ipv6-faults", "ipv6-churn",
]


def run_scenario(name, engine):
    table, config, streams, kwargs = _build(name)
    sim = SpalSimulator(table, config=config)
    return result_digest(sim.run(streams, engine=engine, **kwargs))


@pytest.mark.parametrize("name", SCENARIOS)
@pytest.mark.parametrize("engine", ["array", "scalar"])
def test_golden_replay(name, engine):
    path = GOLDEN_DIR / f"{name}.json"
    golden = json.loads(path.read_text())
    # Round-trip through JSON so tuples/ints compare on equal footing.
    got = json.loads(json.dumps(run_scenario(name, engine)))
    assert sorted(got) == sorted(golden), "result field set drifted"
    for key in golden:
        assert got[key] == golden[key], (
            f"{name} [{engine}] drifted on {key!r}:\n"
            f"  golden: {golden[key]!r}\n"
            f"  got:    {got[key]!r}"
        )
