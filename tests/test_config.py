"""Unit tests for CacheConfig / SpalConfig validation and fabric wiring."""

import pytest

from repro.errors import CacheConfigError, SimulationError
from repro.core import CacheConfig, SpalConfig


class TestCacheConfig:
    def test_defaults_match_paper(self):
        c = CacheConfig()
        assert c.n_blocks == 4096        # β = 4K, the paper's sweet spot
        assert c.associativity == 4      # Sec. 3.2: degree 4 near-optimal
        assert c.mix == 0.5              # γ = 50%
        assert c.victim_blocks == 8      # Sec. 3.2: 8-block victim cache
        c.validate()

    @pytest.mark.parametrize(
        "kw",
        [
            dict(n_blocks=0),
            dict(n_blocks=10, associativity=4),
            dict(mix=-0.1),
            dict(mix=1.1),
            dict(victim_blocks=-1),
        ],
    )
    def test_invalid(self, kw):
        with pytest.raises(CacheConfigError):
            CacheConfig(**kw).validate()


class TestSpalConfig:
    def test_defaults(self):
        c = SpalConfig()
        assert c.n_lcs == 16
        assert c.fe_lookup_cycles == 40  # Lulea-trie FE
        c.validate()

    def test_invalid_lcs(self):
        with pytest.raises(SimulationError):
            SpalConfig(n_lcs=0).validate()

    def test_invalid_fe_cycles(self):
        with pytest.raises(SimulationError):
            SpalConfig(fe_lookup_cycles=0).validate()

    def test_cache_validated_through(self):
        with pytest.raises(CacheConfigError):
            SpalConfig(cache=CacheConfig(mix=2.0)).validate()

    @pytest.mark.parametrize(
        "kind,expected",
        [
            ("default", "crossbar"),   # 16 LCs -> crossbar
            ("ideal", "ideal"),
            ("bus", "bus"),
            ("crossbar", "crossbar"),
            ("multistage", "multistage"),
        ],
    )
    def test_make_fabric(self, kind, expected):
        fab = SpalConfig(fabric=kind).make_fabric()
        assert fab.name == expected

    def test_unknown_fabric(self):
        with pytest.raises(SimulationError):
            SpalConfig(fabric="warp").make_fabric()

    def test_fabric_latency_override(self):
        fab = SpalConfig(fabric="crossbar", fabric_latency=7).make_fabric()
        assert fab.latency_cycles() == 7
