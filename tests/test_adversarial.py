"""Adversarial traffic generators: determinism, shape, and cache impact."""

import numpy as np
import pytest

from repro.core import CacheConfig, SpalConfig
from repro.errors import SimulationError
from repro.routing import random_small_table
from repro.routing.ipv6 import make_ipv6_table
from repro.sim import SpalSimulator
from repro.traffic import (
    FlowPopulation,
    churn_storm,
    flash_crowd,
    generate_stream,
    trace_spec,
    uniform_scan,
)

TABLE = random_small_table(200, seed=23, max_length=20)
SPEC = trace_spec("D_81").scaled(8_000)


@pytest.fixture(scope="module")
def population():
    return FlowPopulation(SPEC, TABLE)


@pytest.fixture(scope="module")
def pivot_population():
    from dataclasses import replace

    return FlowPopulation(replace(SPEC, name="pivot", seed=SPEC.seed + 7), TABLE)


class TestUniformScan:
    def test_deterministic_and_in_population(self, population):
        a = uniform_scan(population, 500, lc=1, seed=4).materialize()
        b = uniform_scan(population, 500, lc=1, seed=4).materialize()
        assert np.array_equal(a, b)
        assert len(a) == 500
        assert set(a.tolist()) <= set(population.addresses.tolist())

    def test_lc_and_seed_decorrelate(self, population):
        a = uniform_scan(population, 400, lc=0, seed=4).materialize()
        b = uniform_scan(population, 400, lc=1, seed=4).materialize()
        c = uniform_scan(population, 400, lc=0, seed=5).materialize()
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_no_popularity_skew(self, population):
        # Uniform draws touch essentially the whole flow population;
        # the Zipf stream of the same length concentrates on fewer flows.
        scan = uniform_scan(population, 3_000, seed=1).materialize()
        zipf = generate_stream(population, 3_000, 0)
        n_flows = len(population.probabilities)
        assert len(np.unique(scan)) >= 0.9 * n_flows
        assert len(np.unique(scan)) > len(np.unique(zipf))

    def test_thrashes_the_cache(self, population):
        config = SpalConfig(
            n_lcs=2, cache=CacheConfig(n_blocks=32), fe_lookup_cycles=5
        )
        def hit_rate(streams):
            r = SpalSimulator(TABLE, config).run(
                [np.array(s, copy=True) for s in streams], name="t"
            )
            return r.overall_hit_rate

        friendly = hit_rate([generate_stream(population, 2_000, lc)
                             for lc in range(2)])
        hostile = hit_rate([uniform_scan(population, 2_000, lc=lc).materialize()
                            for lc in range(2)])
        assert hostile < friendly

    def test_negative_count_rejected(self, population):
        with pytest.raises(SimulationError):
            uniform_scan(population, -1)

    def test_wide_addresses(self):
        table6 = make_ipv6_table(60, seed=9)
        pop6 = FlowPopulation(SPEC, table6)
        scan = uniform_scan(pop6, 200, seed=2).materialize()
        assert len(scan) == 200


class TestFlashCrowd:
    def test_pivot_switches_population(self, population, pivot_population):
        stream = flash_crowd(
            population, pivot_population, 2_000, seed=3, pivot_fraction=0.5
        ).materialize()
        head, tail = set(stream[:1000].tolist()), set(stream[1000:].tolist())
        before = set(np.asarray(population.addresses).tolist())
        after = set(np.asarray(pivot_population.addresses).tolist())
        assert head <= before
        assert tail <= after
        # The pivot changed the working set (disjointly-seeded flows).
        assert len(head & tail) < min(len(head), len(tail))

    def test_deterministic_across_chunk_straddle(self, population,
                                                 pivot_population):
        # A pivot inside a chunk draws both sides from one RNG stream.
        a = flash_crowd(population, pivot_population, 1_000, seed=6,
                        pivot_fraction=0.33).materialize()
        b = flash_crowd(population, pivot_population, 1_000, seed=6,
                        pivot_fraction=0.33).materialize()
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("frac", [0.0, 1.0])
    def test_degenerate_pivots(self, population, pivot_population, frac):
        stream = flash_crowd(
            population, pivot_population, 300, pivot_fraction=frac
        ).materialize()
        pop = pivot_population if frac == 0.0 else population
        assert set(stream.tolist()) <= set(np.asarray(pop.addresses).tolist())

    def test_bad_pivot_rejected(self, population, pivot_population):
        with pytest.raises(SimulationError):
            flash_crowd(population, pivot_population, 100, pivot_fraction=1.5)


class TestChurnStorm:
    def test_storm_is_heavier_than_benign_defaults(self):
        from repro.routing.churn import generate_churn

        storm = churn_storm(TABLE, rate_per_s=10_000_000, horizon_cycles=50_000,
                            seed=2)
        benign = generate_churn(TABLE, rate_per_s=10_000_000,
                                horizon_cycles=50_000, seed=2)
        assert len(storm) > 0
        # Same offered rate, bigger bursts: a wider slice of the table in play.
        prefixes = lambda sched: len({e.prefix for e in sched.events()})
        assert prefixes(storm) >= prefixes(benign)

    def test_storm_drives_update_pipeline(self, population):
        config = SpalConfig(
            n_lcs=2, cache=CacheConfig(n_blocks=64), fe_lookup_cycles=5
        )
        streams = [generate_stream(population, 800, lc) for lc in range(2)]
        storm = churn_storm(TABLE, rate_per_s=20_000_000,
                            horizon_cycles=100_000, seed=4)
        r = SpalSimulator(TABLE, config).run(
            [np.array(s, copy=True) for s in streams],
            updates=storm, name="t",
        )
        assert r.update_events_applied > 0
