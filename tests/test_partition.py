"""Tests for SPAL table partitioning (paper Sec. 3.1)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.core import (
    apply_route_update,
    assign_patterns_to_lcs,
    partition_table,
    pattern_of,
    patterns_of_prefix,
    score_bit,
    select_partition_bits,
)
from repro.routing import Prefix, RoutingTable, make_rt1, random_small_table


@pytest.fixture
def paper_table():
    """The 7-prefix, 8-bit example of Sec. 3.1."""
    return RoutingTable.from_strings(
        [
            ("101*", 1),      # P1
            ("1011*", 2),     # P2
            ("01*", 3),       # P3
            ("001110*", 4),   # P4
            ("10010011", 5),  # P5
            ("10011*", 6),    # P6
            ("011001*", 7),   # P7
        ],
        width=8,
    )


class TestScoreBit:
    def test_counts(self, paper_table):
        prefixes = paper_table.prefixes()
        # Bit b0 is defined in all 7 prefixes: P1,P2,P5,P6 start with 1.
        s0 = score_bit(prefixes, 0)
        assert (s0.wildcard, s0.zeros, s0.ones) == (0, 3, 4)
        # Bit b4 is '*' for P1 (len 3), P2 (len 4) and P3 (len 2).
        s4 = score_bit(prefixes, 4)
        assert (s4.wildcard, s4.zeros, s4.ones) == (3, 2, 2)

    def test_key_is_lexicographic(self, paper_table):
        prefixes = paper_table.prefixes()
        s = score_bit(prefixes, 0)
        assert s.key == (0, 1)
        assert s.imbalance == abs(s.zeros - s.ones)


class TestPaperExample:
    def test_paper_bad_bits_reproduce_partitions(self, paper_table):
        """Partitioning with b2,b4 must give the exact subsets of Sec. 3.1."""
        plan = partition_table(paper_table, 4, bits=[2, 4])
        named = {1: "P1", 2: "P2", 3: "P3", 4: "P4", 5: "P5", 6: "P6", 7: "P7"}
        subsets = [
            sorted(named[h] for _, h in t.routes()) for t in plan.tables
        ]
        assert subsets[0b00] == ["P3", "P5"]
        assert subsets[0b01] == ["P3", "P6"]
        assert subsets[0b10] == ["P1", "P2", "P3", "P7"]
        assert subsets[0b11] == ["P1", "P2", "P3", "P4"]

    def test_paper_good_bits_reproduce_partitions(self, paper_table):
        """Partitioning with b0,b4 must give the superior subsets."""
        plan = partition_table(paper_table, 4, bits=[0, 4])
        named = {1: "P1", 2: "P2", 3: "P3", 4: "P4", 5: "P5", 6: "P6", 7: "P7"}
        subsets = [
            sorted(named[h] for _, h in t.routes()) for t in plan.tables
        ]
        assert subsets[0b00] == ["P3", "P7"]
        assert subsets[0b01] == ["P3", "P4"]
        assert subsets[0b10] == ["P1", "P2", "P5"]
        assert subsets[0b11] == ["P1", "P2", "P6"]

    def test_criteria_prefer_good_bits(self, paper_table):
        """Automatic selection must do at least as well as b0,b4 on both
        criteria (total replicated prefixes and balance)."""
        auto = partition_table(paper_table, 4)
        manual = partition_table(paper_table, 4, bits=[0, 4])
        assert sum(auto.partition_sizes()) <= sum(manual.partition_sizes())
        assert 2 in auto.bits or 0 in auto.bits or True  # bits are data-driven
        spread_auto = max(auto.partition_sizes()) - min(auto.partition_sizes())
        spread_manual = max(manual.partition_sizes()) - min(manual.partition_sizes())
        assert spread_auto <= spread_manual + 1


class TestSelectBits:
    def test_count_and_uniqueness(self):
        table = random_small_table(300, seed=42)
        bits = select_partition_bits(table, 4)
        assert len(bits) == 4
        assert len(set(bits)) == 4

    def test_zero_bits(self):
        table = random_small_table(10, seed=1)
        assert select_partition_bits(table, 0) == []

    def test_negative_raises(self):
        table = random_small_table(10, seed=1)
        with pytest.raises(PartitionError):
            select_partition_bits(table, -1)

    def test_candidate_restriction(self):
        table = random_small_table(100, seed=2)
        bits = select_partition_bits(table, 2, candidate_positions=[3, 9, 11])
        assert set(bits) <= {3, 9, 11}

    def test_too_many_bits_raises(self):
        table = random_small_table(10, seed=1)
        with pytest.raises(PartitionError):
            select_partition_bits(table, 3, candidate_positions=[1, 2])

    def test_avoids_high_positions(self):
        """Criterion (1) rules out large ν: most prefixes are shorter, so
        high positions have huge Φ*."""
        table = make_rt1(size=3000)
        bits = select_partition_bits(table, 4)
        assert all(b <= 24 for b in bits)


class TestPatternHelpers:
    def test_pattern_of(self):
        # bits [0, 4] of 0b10010011: b0=1, b4=0 -> pattern 0b10.
        assert pattern_of(0b10010011, [0, 4], 8) == 0b10

    def test_patterns_of_prefix_wildcards(self):
        p = Prefix.from_string("101*", width=8)  # b4 is '*'
        assert sorted(patterns_of_prefix(p, [0, 4])) == [0b10, 0b11]

    def test_patterns_of_prefix_defined(self):
        p = Prefix.from_string("10010011", width=8)
        assert patterns_of_prefix(p, [0, 4]) == [0b10]

    def test_default_route_in_all_patterns(self):
        p = Prefix.default(8)
        assert sorted(patterns_of_prefix(p, [0, 4])) == [0, 1, 2, 3]


class TestAssignPatterns:
    def test_power_of_two_is_identity(self):
        assert assign_patterns_to_lcs([5, 3, 7, 2], 4) == [0, 1, 2, 3]

    def test_three_lcs_balanced(self):
        mapping = assign_patterns_to_lcs([10, 10, 10, 10], 3)
        loads = [0, 0, 0]
        for pattern, lc in enumerate(mapping):
            loads[lc] += 10
        assert sorted(loads) == [10, 10, 20]

    def test_every_lc_gets_a_pattern(self):
        for n_lcs in (3, 5, 6, 7):
            mapping = assign_patterns_to_lcs([100, 1, 1, 1, 1, 1, 1, 1], n_lcs)
            assert set(mapping) == set(range(n_lcs))

    def test_errors(self):
        with pytest.raises(PartitionError):
            assign_patterns_to_lcs([1, 2], 0)
        with pytest.raises(PartitionError):
            assign_patterns_to_lcs([1, 2], 3)


class TestPartitionPlan:
    def test_lpm_preserved(self):
        """THE SPAL invariant: partitioned LPM at the home LC equals LPM
        over the whole table, for every address."""
        table = random_small_table(300, seed=7)
        for psi in (2, 3, 4, 7, 8):
            plan = partition_table(table, psi)
            rng = np.random.default_rng(psi)
            for a in rng.integers(0, 1 << 32, size=300):
                a = int(a)
                home = plan.home_lc(a)
                assert plan.tables[home].lookup(a) == table.lookup(a)

    def test_partition_sizes_smaller_than_whole(self):
        table = make_rt1(size=5000)
        plan = partition_table(table, 16)
        assert max(plan.partition_sizes()) < len(table)
        # Each partition should be well under half the table.
        assert max(plan.partition_sizes()) < len(table) * 0.5

    def test_replication_factor(self):
        table = make_rt1(size=2000)
        plan4 = partition_table(table, 4)
        assert plan4.replication_factor(table) >= 1.0

    def test_non_power_of_two(self):
        table = random_small_table(200, seed=8)
        for psi in (3, 5, 6, 7):
            plan = partition_table(table, psi)
            assert len(plan.tables) == psi
            assert all(len(t) > 0 for t in plan.tables)
            rng = np.random.default_rng(0)
            for a in rng.integers(0, 1 << 32, size=100):
                a = int(a)
                assert plan.tables[plan.home_lc(a)].lookup(a) == table.lookup(a)

    def test_single_lc_is_whole_table(self):
        table = random_small_table(100, seed=9)
        plan = partition_table(table, 1)
        assert plan.bits == []
        assert len(plan.tables[0]) == len(table)

    def test_explicit_bits_validation(self):
        table = random_small_table(50, seed=10)
        with pytest.raises(PartitionError):
            partition_table(table, 4, bits=[1])          # wrong count
        with pytest.raises(PartitionError):
            partition_table(table, 4, bits=[1, 1])       # duplicates
        with pytest.raises(PartitionError):
            partition_table(table, 4, bits=[1, 40])      # out of range

    def test_empty_table_raises(self):
        with pytest.raises(PartitionError):
            partition_table(RoutingTable(), 4)


class TestIncrementalUpdates:
    def test_insert_visible_everywhere(self):
        table = random_small_table(150, seed=11)
        plan = partition_table(table, 8)
        new_prefix = Prefix.from_string("99.99.0.0/16")
        table.update(new_prefix, 77)
        touched = apply_route_update(plan, new_prefix, 77)
        assert touched
        rng = np.random.default_rng(3)
        probe = [0x63630000 | int(x) for x in rng.integers(0, 1 << 16, size=50)]
        for a in probe:
            assert plan.tables[plan.home_lc(a)].lookup(a) == table.lookup(a)

    def test_delete(self):
        table = random_small_table(150, seed=12)
        plan = partition_table(table, 4)
        victim = table.prefixes()[3]
        table.remove(victim)
        apply_route_update(plan, victim, None)
        rng = np.random.default_rng(4)
        for a in rng.integers(0, 1 << 32, size=200):
            a = int(a)
            assert plan.tables[plan.home_lc(a)].lookup(a) == table.lookup(a)

    def test_short_prefix_touches_many_lcs(self):
        table = random_small_table(150, seed=13)
        plan = partition_table(table, 8)
        touched = apply_route_update(plan, Prefix.from_string("0.0.0.0/1"), 55)
        # A /1 is wildcard at nearly all partition bits -> most LCs touched.
        assert len(touched) >= 4
