"""Tests for the FIB-minimisation pipeline (routing.minimize).

The equivalence contract is the whole point: every pass set must preserve
the longest-prefix-match function exactly — against the dict table, against
all five matcher structures, through the partition plan, under churn, and
through a full simulation replay.  The recursive ORTC constructor
(``_aggregate_table_recursive``) serves as the independent oracle for
*minimality*: the array pipeline must reproduce its output bit for bit.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import Prefix, RoutingTable, random_small_table
from repro.routing.aggregate import _aggregate_table_recursive
from repro.routing.churn import generate_churn
from repro.routing.minimize import (
    PASS_SETS,
    minimization_ratio,
    minimize_table,
    ordered_covering,
    ortc_table,
    remove_default_routes,
)
from repro.routing.table import NO_ROUTE, TableError
from repro.routing.updates import RouteUpdate
from repro.tries import (
    BinaryTrie,
    HashReferenceMatcher,
    LCTrie,
    LuleaTrie,
    MultibitTrie,
)

MATCHERS = (BinaryTrie, LCTrie, LuleaTrie, MultibitTrie, HashReferenceMatcher)


def probe_addresses(table, rng, n_extra=60):
    """Prefix boundaries plus random addresses — the discriminating set."""
    width = table.width
    addrs = set()
    for p in table.prefixes():
        addrs.add(p.value)
        addrs.add(p.last_address())
        if p.length < width:
            addrs.add(p.value | (1 << (width - p.length - 1)))
    for a in rng.integers(0, 1 << min(width, 63), size=n_extra):
        addrs.add(int(a))
    return sorted(addrs)


def assert_equivalent(original, candidate, addrs):
    for a in addrs:
        assert candidate.lookup(a) == original.lookup(a), hex(a)


@st.composite
def tables(draw, width=32, max_routes=22, max_length=None):
    if max_length is None:
        max_length = min(width, 12)
    routes = draw(
        st.lists(
            st.tuples(
                st.integers(0, (1 << width) - 1),
                st.integers(0, max_length),
                st.integers(0, 5),
            ),
            min_size=0,
            max_size=max_routes,
        )
    )
    table = RoutingTable(width)
    for value, length, hop in routes:
        mask = ((1 << length) - 1) << (width - length) if length else 0
        table.update(Prefix(value & mask, length, width), hop)
    return table


class TestKnownCases:
    def test_mergeable_siblings(self):
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.128.0.0/9", 1)]
        )
        out = minimize_table(table, "full").table
        assert len(out) == 1
        assert out.lookup(0x0A000001) == 1
        assert out.lookup(0x0B000001) == NO_ROUTE

    def test_default_route_absorbs_redundant_specifics(self):
        table = RoutingTable.from_strings(
            [("0.0.0.0/0", 7), ("10.0.0.0/8", 7), ("11.0.0.0/8", 2)]
        )
        out = remove_default_routes(table)
        assert len(out) == 2
        assert out.lookup(0x0A000001) == 7
        assert out.lookup(0x0B000001) == 2

    def test_ordered_covering_merges_and_prunes(self):
        # Sibling /9s with one hop collapse into the parent /8, whose own
        # conflicting entry is unreachable and must be replaced.
        table = RoutingTable.from_strings(
            [("10.0.0.0/8", 3), ("10.0.0.0/9", 1), ("10.128.0.0/9", 1)]
        )
        out = ordered_covering(table)
        assert len(out) == 1
        assert out.lookup(0x0A000001) == 1
        assert out.lookup(0x0AFFFFFF) == 1

    def test_null_route_emitted_for_hole(self):
        # ORTC may widen a route and must then re-open the hole with an
        # explicit null route; equivalence includes the unmatched space.
        table = RoutingTable.from_strings(
            [("10.0.0.0/9", 1), ("10.64.0.0/10", 1)]
        )
        out = ortc_table(table)
        assert out.lookup(0x0A800000) == NO_ROUTE
        assert out.lookup(0x0A000001) == 1

    def test_empty_table(self):
        for mode in PASS_SETS:
            state = minimize_table(RoutingTable(), mode)
            assert len(state.table) == 0
            assert state.stats.ratio == 1.0
        assert minimization_ratio(RoutingTable()) == 1.0

    def test_unknown_pass_set_rejected(self):
        with pytest.raises(TableError):
            minimize_table(RoutingTable(), "fastest")

    def test_stats_are_populated(self):
        table = random_small_table(300, seed=7, max_length=18)
        stats = minimize_table(table, "full").stats
        assert stats.original_routes == len(table)
        assert stats.after_pass["defaults"] >= stats.after_pass["ortc"]
        assert stats.minimized_routes == stats.after_pass["oc"]
        assert stats.ratio >= 1.0
        assert stats.build_seconds >= 0.0


class TestMinimalityOracle:
    """The array ORTC must reproduce the recursive reference exactly."""

    @given(tables(), st.data())
    @settings(max_examples=120, deadline=None)
    def test_matches_recursive_ipv4(self, table, data):
        ref = _aggregate_table_recursive(table)
        new = ortc_table(table)
        assert sorted(ref.routes()) == sorted(new.routes())

    @given(tables(width=128, max_routes=14, max_length=16))
    @settings(max_examples=50, deadline=None)
    def test_matches_recursive_ipv6(self, table):
        ref = _aggregate_table_recursive(table)
        new = ortc_table(table)
        assert sorted(ref.routes()) == sorted(new.routes())

    def test_full_equals_ortc_size(self):
        # "full" adds cheap pre/post passes but cannot beat ORTC's
        # proven minimum — nor fall short of it.
        table = random_small_table(500, seed=11, max_length=20)
        assert len(minimize_table(table, "full").table) == len(
            ortc_table(table)
        )


class TestEquivalenceProperties:
    @pytest.mark.parametrize("mode", sorted(PASS_SETS))
    @given(table=tables(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_lookup_equivalence_ipv4(self, mode, table, data):
        state = minimize_table(table, mode)
        assert len(state.table) <= len(table)
        rng = np.random.default_rng(0)
        assert_equivalent(table, state.table, probe_addresses(table, rng))

    @pytest.mark.parametrize("mode", sorted(PASS_SETS))
    @given(table=tables(width=128, max_routes=12, max_length=20))
    @settings(max_examples=25, deadline=None)
    def test_lookup_equivalence_ipv6(self, mode, table):
        state = minimize_table(table, mode)
        rng = np.random.default_rng(1)
        assert_equivalent(table, state.table, probe_addresses(table, rng))

    @given(tables())
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, table):
        once = minimize_table(table, "full").table
        twice = minimize_table(once, "full").table
        assert sorted(once.routes()) == sorted(twice.routes())


class TestMatcherEquivalence:
    @pytest.mark.parametrize("factory", MATCHERS)
    def test_all_matchers_agree_on_minimized_table(self, factory):
        table = random_small_table(600, seed=23, max_length=22)
        minimized = minimize_table(table, "full").table
        matcher = factory(minimized)
        rng = np.random.default_rng(5)
        for a in probe_addresses(table, rng, n_extra=300):
            assert matcher.lookup(a) == table.lookup(a), hex(a)

    def test_partition_preserves_equivalence(self):
        from repro.core import partition_table

        table = random_small_table(500, seed=31, max_length=20)
        minimized = minimize_table(table, "full").table
        plan = partition_table(minimized, 8)
        rng = np.random.default_rng(6)
        for a in probe_addresses(table, rng, n_extra=200):
            home = plan.home_lc(a)
            assert plan.tables[home].lookup(a) == table.lookup(a)


class TestChurn:
    @given(
        table=tables(max_routes=16),
        ops=st.lists(
            st.tuples(
                st.integers(0, (1 << 32) - 1),
                st.integers(0, 10),
                st.integers(-1, 5),  # -1 = withdraw
            ),
            min_size=1,
            max_size=10,
        ),
        mode=st.sampled_from(sorted(PASS_SETS)),
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_update_stays_equivalent(self, table, ops, mode):
        state = minimize_table(table, mode)
        evolved = table.copy()
        for value, length, hop in ops:
            mask = ((1 << length) - 1) << (32 - length) if length else 0
            prefix = Prefix(value & mask, length)
            if hop < 0:
                if prefix not in evolved:
                    continue
                evolved.remove(prefix)
                state.apply_update(RouteUpdate(prefix, None))
            else:
                evolved.update(prefix, hop)
                state.apply_update(RouteUpdate(prefix, hop))
            rng = np.random.default_rng(2)
            addrs = probe_addresses(evolved, rng, n_extra=40)
            assert_equivalent(evolved, state.table, addrs)
            assert_equivalent(evolved, state.original_table(), addrs)

    def test_withdraw_absent_raises(self):
        state = minimize_table(RoutingTable(), "full")
        with pytest.raises(TableError):
            state.apply_update(RouteUpdate(Prefix.from_string("10.0.0.0/8"), None))

    def test_translate_schedule_validates_and_preserves_timing(self):
        table = random_small_table(400, seed=13, max_length=18)
        schedule = generate_churn(
            table, rate_per_s=100_000, horizon_cycles=1_000_000, seed=3
        )
        assert len(schedule) > 0
        state = minimize_table(table, "full")
        minimized_before = state.table.copy()
        translated = state.translate_schedule(schedule)
        # Translation runs on a clone: the state itself is untouched.
        assert sorted(state.table.routes()) == sorted(
            minimized_before.routes()
        )
        # The translated diff is applicable in order to the minimised
        # table (ChurnSchedule.validate replays it).
        translated.validate(minimized_before)
        # Ops may amplify (merged entries split) but timestamps come from
        # the original events only.
        original_cycles = {e.cycle for e in schedule.events()}
        assert {e.cycle for e in translated.events()} <= original_cycles


class TestSimulationReplay:
    """Golden scenarios replayed with minimisation armed: every delivered
    hop must match the original table (enforced by verify=True against the
    minimised oracle plus the equivalence property), and the run must
    complete the same packet population as the unminimised baseline."""

    @pytest.mark.parametrize("engine", ["array", "scalar"])
    @pytest.mark.parametrize("name", ["ipv4-clean", "ipv4-churn", "ipv6-clean"])
    def test_golden_scenarios_with_minimize(self, name, engine):
        from repro.sim import SpalSimulator

        from .test_golden_results import _build

        table, config, streams, kwargs = _build(name)
        minimized_config = dataclasses.replace(
            config, minimize="full", replicas=1
        )
        baseline = SpalSimulator(
            table, dataclasses.replace(config, replicas=1)
        ).run(streams, engine=engine, **dict(kwargs))
        sim = SpalSimulator(table, minimized_config, verify=True)
        result = sim.run(streams, engine=engine, **dict(kwargs))
        # verify=True raises on any served-hop/oracle mismatch; the oracle
        # is the minimised table, equivalent to the original by the
        # properties above.  The population-level aggregates must agree.
        assert result.packets == baseline.packets
        assert result.total_drops == baseline.total_drops
        # The minimised table answers the full stream like the original.
        minimized = sim.table
        for stream in streams:
            for a in stream:
                assert minimized.lookup(int(a)) == table.lookup(int(a))

    def test_run_spal_identity(self):
        from repro.experiments.common import run_spal

        base = run_spal("D_81", 4, packets_per_lc=400)
        mini = run_spal("D_81", 4, packets_per_lc=400, minimize="full")
        assert mini.packets == base.packets
        assert mini.total_drops == base.total_drops

    def test_minimize_metrics_registered(self):
        from repro.core import SpalConfig
        from repro.sim import SpalSimulator

        table = random_small_table(120, seed=3, max_length=16)
        sim = SpalSimulator(table, SpalConfig(n_lcs=2, minimize="full"))
        snap = sim.obs.snapshot()
        assert snap["sim.minimize.original_routes"] == len(table)
        assert snap["sim.minimize.ratio"] >= 1.0
        assert sim.minimize_stats is not None

    def test_plan_injection_rejected_with_minimize(self):
        from repro.core import SpalConfig, partition_table
        from repro.errors import SimulationError
        from repro.sim import SpalSimulator

        table = random_small_table(120, seed=4, max_length=16)
        plan = partition_table(table, 2)
        with pytest.raises(SimulationError):
            SpalSimulator(
                table, SpalConfig(n_lcs=2, minimize="full"), plan=plan
            )

    def test_bad_minimize_mode_rejected(self):
        from repro.core import SpalConfig
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            SpalConfig(minimize="fastest").validate()
