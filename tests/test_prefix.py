"""Unit tests for repro.routing.prefix."""

import pytest

from repro.errors import PrefixError
from repro.routing.prefix import (
    IPV6_WIDTH,
    WILDCARD,
    Prefix,
    format_ipv4,
    parse_ipv4,
)


class TestConstruction:
    def test_basic(self):
        p = Prefix(0xC0A80000, 16)
        assert p.length == 16
        assert p.width == 32

    def test_zero_length_default(self):
        p = Prefix.default()
        assert p.length == 0
        assert p.value == 0

    def test_full_length(self):
        p = Prefix(0xFFFFFFFF, 32)
        assert p.length == 32

    def test_host_bits_must_be_zero(self):
        with pytest.raises(PrefixError):
            Prefix(0xC0A80001, 16)

    def test_length_out_of_range(self):
        with pytest.raises(PrefixError):
            Prefix(0, 33)
        with pytest.raises(PrefixError):
            Prefix(0, -1)

    def test_value_out_of_range(self):
        with pytest.raises(PrefixError):
            Prefix(1 << 32, 32)

    def test_ipv6_width(self):
        p = Prefix(0x2001 << 112, 16, width=IPV6_WIDTH)
        assert p.width == 128
        assert p.bit(0) == 0
        assert p.bit(2) == 1  # 0x2001 = 0010 0000 0000 0001


class TestParsing:
    def test_dotted_quad(self):
        p = Prefix.from_string("192.168.0.0/16")
        assert p.value == 0xC0A80000
        assert p.length == 16

    def test_dotted_quad_zeroes_host_bits(self):
        p = Prefix.from_string("192.168.1.1/16")
        assert p.value == 0xC0A80000

    def test_binary_notation(self):
        p = Prefix.from_string("101*")
        assert p.length == 3
        assert p.value == 0b101 << 29

    def test_binary_no_star(self):
        p = Prefix.from_string("10110000", width=8)
        assert p.length == 8

    def test_binary_empty_star_is_default(self):
        p = Prefix.from_string("*")
        assert p.length == 0

    def test_bad_inputs(self):
        for bad in ["", "1.2.3.4", "1.2.3/8", "300.0.0.0/8", "1.2.3.4/40",
                    "10*1*", "1.2.3.4/-1", "a.b.c.d/8"]:
            with pytest.raises(PrefixError):
                Prefix.from_string(bad)

    def test_roundtrip_str(self):
        p = Prefix.from_string("10.32.0.0/11")
        assert Prefix.from_string(str(p)) == p

    def test_to_binary_roundtrip(self):
        p = Prefix.from_string("1011001*", width=8)
        assert p.to_binary() == "1011001*"
        assert Prefix.from_string(p.to_binary(), width=8) == p


class TestBits:
    def test_bit_positions_msb_first(self):
        p = Prefix.from_string("10110*", width=8)
        assert [p.bit(i) for i in range(5)] == [1, 0, 1, 1, 0]

    def test_wildcard_beyond_length(self):
        p = Prefix.from_string("10*", width=8)
        assert p.bit(2) == WILDCARD
        assert p.bit(7) == WILDCARD

    def test_bit_out_of_range(self):
        p = Prefix.from_string("10*", width=8)
        with pytest.raises(PrefixError):
            p.bit(8)

    def test_bits_iterator(self):
        p = Prefix.from_string("0110*", width=8)
        assert list(p.bits()) == [0, 1, 1, 0]

    def test_extended(self):
        p = Prefix.from_string("10*", width=8)
        assert p.extended(1).to_binary() == "101*"
        assert p.extended(0).to_binary() == "100*"

    def test_extend_full_raises(self):
        p = Prefix(0, 8, width=8)
        with pytest.raises(PrefixError):
            p.extended(0)


class TestRelations:
    def test_matches(self):
        p = Prefix.from_string("192.168.0.0/16")
        assert p.matches(0xC0A80101)
        assert not p.matches(0xC0A90101)

    def test_default_matches_everything(self):
        p = Prefix.default()
        assert p.matches(0)
        assert p.matches(0xFFFFFFFF)

    def test_contains(self):
        outer = Prefix.from_string("10.0.0.0/8")
        inner = Prefix.from_string("10.1.0.0/16")
        assert outer.contains(inner)
        assert outer.contains(outer)
        assert not inner.contains(outer)

    def test_contains_disjoint(self):
        a = Prefix.from_string("10.0.0.0/8")
        b = Prefix.from_string("11.0.0.0/8")
        assert not a.contains(b)

    def test_first_last_address(self):
        p = Prefix.from_string("10.0.0.0/8")
        assert p.first_address() == 0x0A000000
        assert p.last_address() == 0x0AFFFFFF

    def test_hash_and_eq(self):
        a = Prefix.from_string("10.0.0.0/8")
        b = Prefix.from_string("10.0.0.0/8")
        c = Prefix.from_string("10.0.0.0/9")
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_width_matters_for_eq(self):
        a = Prefix(0, 0, width=32)
        b = Prefix(0, 0, width=128)
        assert a != b

    def test_ordering(self):
        a = Prefix.from_string("10.0.0.0/8")
        b = Prefix.from_string("10.0.0.0/9")
        c = Prefix.from_string("11.0.0.0/8")
        assert sorted([c, b, a]) == [a, b, c]


class TestHelpers:
    def test_parse_ipv4(self):
        assert parse_ipv4("1.2.3.4") == 0x01020304

    def test_parse_ipv4_errors(self):
        for bad in ["1.2.3", "1.2.3.4.5", "256.0.0.1", "x.0.0.1"]:
            with pytest.raises(PrefixError):
                parse_ipv4(bad)

    def test_format_ipv4(self):
        assert format_ipv4(0x01020304) == "1.2.3.4"
        assert format_ipv4(0) == "0.0.0.0"
        assert format_ipv4(0xFFFFFFFF) == "255.255.255.255"
