"""Tests for the IPv6 table substrate and 128-bit partitioning/tries."""

import pytest

from repro.core import partition_table
from repro.routing import (
    IPV6_WIDTH,
    Prefix,
    ipv6_addresses_matching,
    make_ipv6_table,
)
from repro.tries import BinaryTrie, DPTrie, HashReferenceMatcher


@pytest.fixture(scope="module")
def table():
    return make_ipv6_table(800, seed=3)


class TestGenerator:
    def test_size_and_width(self, table):
        assert len(table) == 801  # routes + default
        assert table.width == IPV6_WIDTH

    def test_deterministic(self):
        a = make_ipv6_table(100, seed=9)
        b = make_ipv6_table(100, seed=9)
        assert sorted(a.routes()) == sorted(b.routes())

    def test_rooted_in_global_unicast(self, table):
        for prefix in table.prefixes():
            if prefix.length == 0:
                continue
            assert prefix.bit(0) == 0 and prefix.bit(1) == 0 and prefix.bit(2) == 1

    def test_tier_lengths(self, table):
        lengths = set(table.length_histogram())
        assert 32 in lengths and 48 in lengths

    def test_no_default_option(self):
        t = make_ipv6_table(50, include_default=False)
        assert not t.has_default_route()

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            make_ipv6_table(-1)

    def test_addresses_covered(self, table):
        for addr in ipv6_addresses_matching(table, 100, seed=1):
            assert table.lookup_prefix(addr) is not None


class TestIPv6Structures:
    def test_binary_trie_matches_oracle(self, table):
        trie = BinaryTrie(table)
        for addr in ipv6_addresses_matching(table, 200, seed=2):
            assert trie.lookup(addr) == table.lookup(addr)

    def test_dp_trie_matches_oracle(self, table):
        trie = DPTrie(table)
        for addr in ipv6_addresses_matching(table, 200, seed=3):
            assert trie.lookup(addr) == table.lookup(addr)

    def test_hash_reference_matches_oracle(self, table):
        trie = HashReferenceMatcher(table)
        for addr in ipv6_addresses_matching(table, 200, seed=4):
            assert trie.lookup(addr) == table.lookup(addr)

    def test_partition_preserves_lpm_at_width_128(self, table):
        for psi in (4, 6):
            plan = partition_table(table, psi)
            for addr in ipv6_addresses_matching(table, 150, seed=psi):
                home = plan.home_lc(addr)
                assert plan.tables[home].lookup(addr) == table.lookup(addr)

    def test_partition_reduces_storage(self, table):
        plan = partition_table(table, 8)
        whole = BinaryTrie(table).storage_bytes()
        assert max(BinaryTrie(t).storage_bytes() for t in plan.tables) < whole

    def test_dp_trie_incremental_ipv6(self, table):
        trie = DPTrie(width=IPV6_WIDTH)
        for prefix, hop in table.routes():
            trie.insert(prefix, hop)
        victim = table.prefixes()[7]
        trie.delete(victim)
        reduced = table.copy()
        reduced.remove(victim)
        for addr in ipv6_addresses_matching(table, 100, seed=5):
            assert trie.lookup(addr) == reduced.lookup(addr)


class TestIPv6EndToEnd:
    def test_simulation_at_width_128(self, table):
        """Full SPAL cycle simulation over IPv6 with the partition
        invariant dynamically verified on every FE lookup."""
        from repro.core import CacheConfig, SpalConfig
        from repro.sim import SpalSimulator
        from repro.traffic import FlowPopulation, TraceSpec, generate_router_streams

        spec = TraceSpec("v6", n_flows=300, recency=0.3, seed=7)
        pop = FlowPopulation(spec, table)
        streams = generate_router_streams(pop, 4, 600)
        assert isinstance(streams[0], list)  # >64-bit addresses
        sim = SpalSimulator(
            table,
            SpalConfig(n_lcs=4, cache=CacheConfig(n_blocks=256)),
            verify=True,
        )
        result = sim.run(streams)
        assert result.packets == 2400
        assert result.overall_hit_rate > 0.3

    def test_ipv6_streams_deterministic(self, table):
        from repro.traffic import FlowPopulation, TraceSpec, generate_stream

        spec = TraceSpec("v6", n_flows=100, seed=8)
        pop = FlowPopulation(spec, table)
        a = generate_stream(pop, 200)
        b = generate_stream(pop, 200)
        assert a == b
        assert all(x >> 125 == 0b001 for x in a)  # global unicast
