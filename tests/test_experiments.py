"""Smoke tests for the experiment runners (tiny configurations).

Each runner must produce rows, render text, and satisfy the coarse shape
property its paper artifact claims.  Full-scale regeneration lives in the
benchmark suite and the CLI.
"""

import pytest

from repro.experiments import (
    REGISTRY,
    run_access_counts,
    run_bit_selection,
    run_bit_selection_ablation,
    run_design_ablations,
    run_fabric_sensitivity,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_headline,
    run_partition_storage,
    run_scenario_matrix,
    run_worst_case_partitioned,
)
from repro.experiments.common import (
    ExperimentResult,
    default_packets_per_lc,
    mix_for_cache,
    paper_scale,
    scale_cache,
)

TINY = dict(packets_per_lc=1500)


class TestCommon:
    def test_paper_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale()
        assert default_packets_per_lc() == 30_000
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale()
        assert default_packets_per_lc() == 300_000

    def test_mix_rule(self):
        assert mix_for_cache(1024) == 0.25
        assert mix_for_cache(2048) == 0.5
        assert mix_for_cache(8192) == 0.5

    def test_scale_cache(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert scale_cache(4096) == 1024
        assert scale_cache(None) is None
        assert scale_cache(64) == 64
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert scale_cache(4096) == 4096

    def test_registry_complete(self):
        for key in (
            "partition-bits",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "headline",
            "ablations",
        ):
            assert key in REGISTRY


class TestStorageExperiments:
    def test_bit_selection_rows(self):
        result = run_bit_selection()
        assert isinstance(result, ExperimentResult)
        assert len(result.rows) == 4  # 2 tables x 2 psi
        for row in result.rows:
            assert row["min_partition"] > 0
            assert row["max_partition"] >= row["min_partition"]
        assert result.rendered

    @pytest.mark.slow
    def test_partition_storage_savings_positive(self):
        result = run_partition_storage()
        assert len(result.rows) == 12  # 2 tables x 3 tries x 2 psi
        for row in result.rows:
            assert row["saving_per_lc_kb"] > 0

    @pytest.mark.slow
    def test_fig3_s_below_w(self):
        result = run_fig3()
        assert len(result.rows) == 4
        for row in result.rows:
            for trie in ("DP", "LL", "LC"):
                assert row[f"{trie}_S"] < row[f"{trie}_W"]

    @pytest.mark.slow
    def test_access_counts_match_paper_band(self):
        result = run_access_counts(n_addresses=2000)
        by_key = {(r["table"], r["trie"]): r for r in result.rows}
        # Lulea: paper 6.2/6.6 accesses -> ~40 FE cycles.
        for table in ("RT_1", "RT_2"):
            lulea = by_key[(table, "LL")]
            assert 4.5 <= lulea["mean_accesses"] <= 8.5
            assert 35 <= lulea["fe_cycles"] <= 45
            dp = by_key[(table, "DP")]
            assert 11 <= dp["mean_accesses"] <= 20
            assert 50 <= dp["fe_cycles"] <= 72

    @pytest.mark.slow
    def test_worst_case_partitioned(self):
        # The paper's claim is "may *possibly* shorten" the worst case —
        # partitioning must never blow it up, and should help or tie for
        # most structures.
        result = run_worst_case_partitioned(n_addresses=800)
        assert len(result.rows) == 6
        for row in result.rows:
            assert row["partitioned_worst"] <= row["whole_worst"] * 1.5
        improved = sum(1 for r in result.rows if r["improved"])
        assert improved >= len(result.rows) // 2


class TestSimulationExperiments:
    def test_fig4_shape(self):
        result = run_fig4(**TINY, traces=["D_75"])
        assert len(result.rows) == 4  # 4 mix values
        assert all(r["mean_cycles"] > 0 for r in result.rows)

    def test_fig5_monotone_for_high_pressure_trace(self):
        # Needs enough packets that the scaled flow population exceeds the
        # smallest cache, otherwise every size is equally effective.
        result = run_fig5(packets_per_lc=2500, traces=["L_92-0"])
        means = [r["mean_cycles"] for r in result.rows]
        assert means[0] > means[-1]  # 1K worse than 8K

    def test_fig6_improves_with_psi(self):
        result = run_fig6(**TINY, traces=["D_75"], psi_values=(1, 4, 16))
        means = {r["psi"]: r["mean_cycles"] for r in result.rows}
        assert means[16] < means[1]

    def test_headline_speedup(self):
        result = run_headline(**TINY, traces=["D_75"])
        data_rows = [r for r in result.rows if r["trace"] != "MEAN"]
        assert all(r["speedup"] > 1.0 for r in data_rows)
        assert result.rows[-1]["trace"] == "MEAN"

    def test_design_ablations_rows(self):
        result = run_design_ablations(packets_per_lc=1500, cache_blocks=1024)
        variants = [r["variant"] for r in result.rows]
        assert any("victim" in v for v in variants)
        assert any("no LR-caches" in v for v in variants)
        base = result.rows[0]["mean_cycles"]
        uncached = next(
            r for r in result.rows if r["variant"] == "no LR-caches"
        )["mean_cycles"]
        assert uncached > base

    def test_fabric_sensitivity_monotone_ends(self):
        result = run_fabric_sensitivity(packets_per_lc=1500)
        assert result.rows[0]["fabric_cycles"] == 0
        assert result.rows[-1]["mean_cycles"] >= result.rows[0]["mean_cycles"]

    def test_scenario_matrix(self):
        result = run_scenario_matrix(packets_per_lc=1500)
        assert len(result.rows) == 4
        # The 62-cycle FE is never faster than the 40-cycle FE at equal speed.
        by_key = {(r["speed_gbps"], r["fe_cycles"]): r["mean_cycles"]
                  for r in result.rows}
        assert by_key[(40, 62)] >= by_key[(40, 40)] * 0.9

    def test_bit_selection_ablation(self):
        result = run_bit_selection_ablation()
        by_variant = {r["variant"]: r for r in result.rows}
        criteria = next(v for k, v in by_variant.items() if "criteria" in k)
        naive_top = by_variant["naive top bits 0-3"]
        # Criteria selection must balance at least as well as naive top bits.
        assert criteria["max_partition"] <= naive_top["max_partition"]


class TestCLI:
    def test_main_unknown_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_main_runs_one(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["partition-bits"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out

    def test_main_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig5" in out and "scorecard" in out

    def test_main_out_dir(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["-o", str(tmp_path), "partition-bits"]) == 0
        assert (tmp_path / "partition-bits.txt").exists()
        assert (tmp_path / "partition-bits.json").exists()
        import json

        data = json.loads((tmp_path / "partition-bits.json").read_text())
        assert data["exp_id"] == "E1"
