"""Tests for pattern replication (load spreading + fault tolerance)."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.core import apply_route_update, partition_table
from repro.routing import Prefix, random_small_table


@pytest.fixture(scope="module")
def table():
    return random_small_table(300, seed=81)


class TestReplicatedPlan:
    def test_lpm_preserved_on_every_replica(self, table):
        plan = partition_table(table, 8, replicas=2)
        rng = np.random.default_rng(1)
        for a in rng.integers(0, 1 << 32, size=300):
            a = int(a)
            # Not just the chosen home: EVERY replica must answer correctly.
            pattern_lcs = plan.replicas_of_pattern[
                __import__("repro").core.pattern_of(a, plan.bits, 32)
            ]
            for lc in pattern_lcs:
                assert plan.tables[lc].lookup(a) == table.lookup(a)

    def test_home_is_always_a_replica(self, table):
        plan = partition_table(table, 8, replicas=3)
        from repro.core import pattern_of

        rng = np.random.default_rng(2)
        for a in rng.integers(0, 1 << 32, size=200):
            a = int(a)
            home = plan.home_lc(a)
            assert home in plan.replicas_of_pattern[pattern_of(a, plan.bits, 32)]

    def test_tables_grow_roughly_replica_fold(self, table):
        single = partition_table(table, 8, replicas=1)
        double = partition_table(table, 8, replicas=2)
        assert sum(double.partition_sizes()) > 1.5 * sum(single.partition_sizes())

    def test_replica_choice_deterministic_per_address(self, table):
        plan = partition_table(table, 8, replicas=2)
        for a in (0x0A000001, 0xC0A80101):
            assert plan.home_lc(a) == plan.home_lc(a)

    def test_load_spreads_across_replicas(self, table):
        plan = partition_table(table, 4, replicas=2)
        rng = np.random.default_rng(3)
        homes = [plan.home_lc(int(a)) for a in rng.integers(0, 1 << 32, size=2000)]
        counts = np.bincount(homes, minlength=4)
        # With 2 replicas per pattern no LC should dominate.
        assert counts.max() < 2 * counts.min() + 50

    def test_validation(self, table):
        with pytest.raises(PartitionError):
            partition_table(table, 4, replicas=0)
        with pytest.raises(PartitionError):
            partition_table(table, 4, replicas=5)

    def test_unreplicated_plan_unchanged(self, table):
        plan = partition_table(table, 8, replicas=1)
        assert plan.replicas_of_pattern is None


class TestFailover:
    def test_failed_lc_skipped(self, table):
        plan = partition_table(table, 4, replicas=2)
        rng = np.random.default_rng(4)
        addrs = [int(a) for a in rng.integers(0, 1 << 32, size=500)]
        plan.fail_lc(2)
        for a in addrs:
            home = plan.home_lc(a)
            assert home != 2
            assert plan.tables[home].lookup(a) == table.lookup(a)

    def test_restore(self, table):
        plan = partition_table(table, 4, replicas=2)
        plan.fail_lc(1)
        plan.restore_lc(1)
        rng = np.random.default_rng(5)
        homes = {plan.home_lc(int(a)) for a in rng.integers(0, 1 << 32, size=800)}
        assert 1 in homes

    def test_unreplicated_failure_is_fatal_for_its_patterns(self, table):
        plan = partition_table(table, 4, replicas=1)
        # Without replicas_of_pattern, fail_lc records the failure but
        # home_lc (paper semantics) cannot route around it.
        plan.fail_lc(0)
        assert 0 in plan.failed_lcs

    def test_all_replicas_failed_raises(self, table):
        plan = partition_table(table, 4, replicas=2)
        from repro.core import pattern_of

        addr = 0x0A000001
        replicas = plan.replicas_of_pattern[pattern_of(addr, plan.bits, 32)]
        for lc in replicas:
            plan.fail_lc(lc)
        with pytest.raises(PartitionError):
            plan.home_lc(addr)

    def test_fail_out_of_range(self, table):
        plan = partition_table(table, 4, replicas=2)
        with pytest.raises(PartitionError):
            plan.fail_lc(9)


class TestReplicatedUpdates:
    def test_update_touches_all_replicas(self, table):
        plan = partition_table(table, 8, replicas=2)
        prefix = Prefix.from_string("99.99.0.0/16")
        touched = apply_route_update(plan, prefix, 42)
        from repro.core import patterns_of_prefix

        expected = set()
        for pattern in patterns_of_prefix(prefix, plan.bits):
            expected.update(plan.replicas_of_pattern[pattern])
        assert set(touched) == expected
        for lc in touched:
            assert plan.tables[lc].get(prefix) == 42


class TestReplicationExperiment:
    def test_replication_cures_hotspot(self):
        from repro.experiments import run_replication

        result = run_replication(packets_per_lc=4000)
        by_variant = {r["variant"]: r for r in result.rows}
        exact = by_variant["paper-exact (2 bits, r=1)"]
        replicated = by_variant["paper-exact bits, r=2"]
        # Replication must beat the unreplicated paper-exact scheme on both
        # latency and load balance at psi=3.
        assert replicated["mean_cycles"] < exact["mean_cycles"]
        assert replicated["fe_imbalance"] < exact["fe_imbalance"]
        # ...at the cost of larger forwarding tables.
        assert replicated["max_partition"] > exact["max_partition"]
