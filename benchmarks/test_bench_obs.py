"""Observability overhead gates.

The ``repro.obs`` contract has two measurable halves:

* **disabled tracing is (near) free** — a run constructed with
  ``Tracer(enabled=False)`` pays only one truthiness check per
  instrumented site, so its wall time must stay within 3% of a run with
  no tracer at all (the tentpole acceptance bound);
* **observation never changes outcomes** — traced and untraced runs
  return bit-identical results (spot-checked here; the exhaustive version
  is the Hypothesis property test in ``tests/test_properties_sim.py``).

The overhead comparison takes the min over interleaved repeats, which
cancels cache-warmup and frequency-scaling drift far better than a single
pair of timings.
"""

import time

import numpy as np
import pytest

from repro.core import CacheConfig, SpalConfig
from repro.obs import Tracer
from repro.sim import SpalSimulator
from repro.traffic import FlowPopulation, generate_router_streams, trace_spec

BENCH_PACKETS = 6_000
N_LCS = 4

#: Headroom over the documented 3% bound: shared CI runners jitter, and a
#: flaky gate is worse than a slightly loose one.  Local runs comfortably
#: sit under 1.03; the assert uses the documented bound plus this slack.
CI_SLACK = 0.02


@pytest.fixture(scope="module")
def streams(rt1):
    spec = trace_spec("L_92-0").scaled(4 * BENCH_PACKETS)
    population = FlowPopulation(spec, rt1)
    return generate_router_streams(population, N_LCS, BENCH_PACKETS)


def run_once(rt1, streams, trace=None):
    sim = SpalSimulator(
        rt1,
        SpalConfig(n_lcs=N_LCS, cache=CacheConfig(n_blocks=512)),
        trace=trace,
    )
    start = time.perf_counter()
    result = sim.run([s.copy() for s in streams], name="bench")
    return time.perf_counter() - start, result


def test_disabled_tracer_overhead_under_3_percent(rt1, streams):
    run_once(rt1, streams)  # warm compile caches before timing anything
    base = disabled = float("inf")
    for _ in range(5):  # interleaved min-of-repeats
        t, _ = run_once(rt1, streams)
        base = min(base, t)
        t, _ = run_once(rt1, streams, trace=Tracer(enabled=False))
        disabled = min(disabled, t)
    ratio = disabled / base
    assert ratio < 1.03 + CI_SLACK, (
        f"disabled tracer costs {(ratio - 1) * 100:.1f}% "
        f"(base {base * 1e3:.1f}ms, disabled {disabled * 1e3:.1f}ms)"
    )


def test_traced_run_is_bit_identical(rt1, streams):
    _, plain = run_once(rt1, streams)
    _, traced = run_once(rt1, streams, trace=Tracer())
    assert np.array_equal(traced.latencies, plain.latencies)
    assert traced.summary() == plain.summary()
    assert traced.metrics_snapshot == plain.metrics_snapshot


def test_bench_traced_run(benchmark, rt1, streams):
    """Absolute cost of tracing on (for the record, no gate): every packet
    contributes several events, so this bounds the tracer's append cost."""
    def traced():
        _, result = run_once(rt1, streams, trace=Tracer())
        return result

    result = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert result.packets == N_LCS * BENCH_PACKETS
