"""Observability overhead gates.

The ``repro.obs`` contract has three measurable halves:

* **disabled tracing is (near) free** — a run constructed with
  ``Tracer(enabled=False)`` pays only one truthiness check per
  instrumented site, so its wall time must stay within 3% of a run with
  no tracer at all (the tentpole acceptance bound);
* **the telemetry sampler is cheap when on** — a run with
  ``sample_interval_cycles`` set pays only a per-window read of counters
  the engines maintain anyway, so its wall time must stay within 5% of
  an unsampled run (when off, the scalar engine takes a separate loop
  with zero added hot-path work, so the 3% bound above covers it);
* **observation never changes outcomes** — traced, sampled, and plain
  runs return bit-identical results (spot-checked here; the exhaustive
  versions are the Hypothesis property test in
  ``tests/test_properties_sim.py`` and the three-engine identity suite
  in ``tests/test_engine_identity.py``).

The overhead comparisons take the min over interleaved repeats, which
cancels cache-warmup and frequency-scaling drift far better than a single
pair of timings.  Before asserting, each gate measures an A/A noise floor
(the same configuration in both interleave slots); a host whose floor
cannot resolve the bound — noisy shared runners, loaded dev boxes —
skips instead of failing on measurement noise.
"""

import time

import numpy as np
import pytest

from repro.core import CacheConfig, SpalConfig
from repro.obs import Tracer
from repro.sim import SpalSimulator
from repro.traffic import FlowPopulation, generate_router_streams, trace_spec

BENCH_PACKETS = 6_000
N_LCS = 4
SAMPLE_INTERVAL = 512

#: Headroom over the documented 3% bound: shared CI runners jitter, and a
#: flaky gate is worse than a slightly loose one.  Local runs comfortably
#: sit under 1.03; the assert uses the documented bound plus this slack.
CI_SLACK = 0.02


@pytest.fixture(scope="module")
def streams(rt1):
    spec = trace_spec("L_92-0").scaled(4 * BENCH_PACKETS)
    population = FlowPopulation(spec, rt1)
    return generate_router_streams(population, N_LCS, BENCH_PACKETS)


def run_once(rt1, streams, trace=None, sample_interval=None):
    sim = SpalSimulator(
        rt1,
        SpalConfig(
            n_lcs=N_LCS,
            cache=CacheConfig(n_blocks=512),
            sample_interval_cycles=sample_interval,
        ),
        trace=trace,
    )
    start = time.perf_counter()
    result = sim.run([s.copy() for s in streams], name="bench")
    return time.perf_counter() - start, result


def interleaved_mins(run_a, run_b, repeats=5):
    """min-of-repeats wall times for two run thunks, interleaved."""
    a = b = float("inf")
    for _ in range(repeats):
        a = min(a, run_a()[0])
        b = min(b, run_b()[0])
    return a, b


def require_noise_floor(rt1, streams, bound):
    """Skip when this host's A/A timing noise cannot resolve ``bound``."""
    base = lambda: run_once(rt1, streams)
    aa_x, aa_y = interleaved_mins(base, base)
    noise = abs(aa_y / aa_x - 1)
    if noise > bound / 2:
        pytest.skip(
            f"A/A timing noise {noise:.1%} on this host cannot resolve "
            f"a {bound:.0%} overhead bound"
        )


def test_disabled_tracer_overhead_under_3_percent(rt1, streams):
    run_once(rt1, streams)  # warm compile caches before timing anything
    require_noise_floor(rt1, streams, 0.03)
    base, disabled = interleaved_mins(
        lambda: run_once(rt1, streams),
        lambda: run_once(rt1, streams, trace=Tracer(enabled=False)),
    )
    ratio = disabled / base
    assert ratio < 1.03 + CI_SLACK, (
        f"disabled tracer costs {(ratio - 1) * 100:.1f}% "
        f"(base {base * 1e3:.1f}ms, disabled {disabled * 1e3:.1f}ms)"
    )


def test_sampler_overhead_under_5_percent(rt1, streams):
    run_once(rt1, streams)  # warm compile caches before timing anything
    require_noise_floor(rt1, streams, 0.05)
    base, sampled = interleaved_mins(
        lambda: run_once(rt1, streams),
        lambda: run_once(rt1, streams, sample_interval=SAMPLE_INTERVAL),
    )
    ratio = sampled / base
    assert ratio < 1.05 + CI_SLACK, (
        f"sampler costs {(ratio - 1) * 100:.1f}% "
        f"(base {base * 1e3:.1f}ms, sampled {sampled * 1e3:.1f}ms)"
    )


def test_sampled_run_is_bit_identical(rt1, streams):
    _, plain = run_once(rt1, streams)
    _, sampled = run_once(rt1, streams, sample_interval=SAMPLE_INTERVAL)
    assert np.array_equal(sampled.latencies, plain.latencies)
    assert sampled.summary() == plain.summary()
    assert sampled.metrics_snapshot == plain.metrics_snapshot
    # ...and the sampler actually ran: window totals tie out to the run.
    series = sampled.timeseries
    assert series is not None and len(series) > 0
    assert int(series["completed"].sum()) == plain.packets


def test_traced_run_is_bit_identical(rt1, streams):
    _, plain = run_once(rt1, streams)
    _, traced = run_once(rt1, streams, trace=Tracer())
    assert np.array_equal(traced.latencies, plain.latencies)
    assert traced.summary() == plain.summary()
    assert traced.metrics_snapshot == plain.metrics_snapshot


def test_bench_traced_run(benchmark, rt1, streams):
    """Absolute cost of tracing on (for the record, no gate): every packet
    contributes several events, so this bounds the tracer's append cost."""
    def traced():
        _, result = run_once(rt1, streams, trace=Tracer())
        return result

    result = benchmark.pedantic(traced, rounds=3, iterations=1)
    assert result.packets == N_LCS * BENCH_PACKETS
