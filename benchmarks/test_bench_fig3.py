"""E3 bench — Fig. 3: total SRAM with (S) vs without (W) partitioning."""

import pytest

from repro.core import partition_table
from repro.tries import DPTrie, LCTrie, LuleaTrie

FACTORIES = {
    "DP": DPTrie,
    "LL": LuleaTrie,
    "LC": lambda t: LCTrie(t, fill_factor=0.25),
}


@pytest.mark.parametrize("psi", [4, 16])
def test_bench_fig3_row(benchmark, rt1, psi):
    """Regenerate one Fig. 3 group (RT_1 at one ψ): six bars."""
    plan = partition_table(rt1, psi)

    def regenerate():
        row = {}
        for name, factory in FACTORIES.items():
            whole = factory(rt1).storage_bytes()
            split = sum(factory(t).storage_bytes() for t in plan.tables)
            row[f"{name}_S"] = split
            row[f"{name}_W"] = whole * psi
        return row

    row = benchmark(regenerate)
    # Fig. 3's message: the S bar is below the W bar for every trie.
    for name in FACTORIES:
        assert row[f"{name}_S"] < row[f"{name}_W"]
    if psi == 4:
        # The Lulea trie is the most compact structure.  (At psi=16 over
        # this *bench-sized* table its fixed per-partition overhead — 4K
        # code words + base indexes per level-1 — dominates; the relation
        # holds at paper scale.)
        assert row["LL_S"] <= row["DP_S"]
