"""E5 bench — Fig. 4: mean lookup time vs mix value γ (ψ=4, β=4K nominal)."""

import pytest

from repro.experiments.common import run_spal
#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000


@pytest.mark.parametrize("mix", [0.0, 0.25, 0.5, 0.75])
def test_bench_fig4_point(benchmark, mix):
    """One γ point of Fig. 4 over the D_75 trace."""
    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(
            trace="D_75",
            n_lcs=4,
            cache_blocks=4096,
            mix=mix,
            packets_per_lc=BENCH_PACKETS,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.packets > 0
    assert result.mean_lookup_cycles < 40  # always beats the raw FE time


def test_bench_fig4_mix_shape():
    """Fig. 4's finding: a balanced mix (25–50%) beats the extremes for
    remote-heavy traffic."""
    means = {}
    for mix in (0.0, 0.5, 0.75):
        r = run_spal(
            "L_92-0",
            n_lcs=4,
            cache_blocks=4096,
            mix=mix,
            packets_per_lc=BENCH_PACKETS,
        )
        means[mix] = r.mean_lookup_cycles
    assert means[0.5] <= means[0.75]
