"""E7 bench — Fig. 6: mean lookup time vs ψ (β=4K nominal, γ=50%)."""

import pytest

from repro.experiments.common import run_spal
#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000


@pytest.mark.parametrize("psi", [1, 2, 3, 4, 8, 16])
def test_bench_fig6_point(benchmark, psi):
    """One ψ point of Fig. 6 over the D_75 trace (including the paper's
    non-power-of-two ψ=3)."""
    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(
            trace="D_75",
            n_lcs=psi,
            cache_blocks=4096,
            mix=0.5,
            packets_per_lc=BENCH_PACKETS,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.n_lcs == psi
    assert result.mean_lookup_cycles > 0


def test_bench_fig6_scaling_shape():
    """Fig. 6's finding: a larger ψ lowers mean lookup time (finer
    fragmentation -> better per-cache coverage + more FE parallelism)."""
    means = {}
    for psi in (1, 4, 16):
        r = run_spal(
            "D_75",
            n_lcs=psi,
            cache_blocks=4096,
            mix=0.5,
            packets_per_lc=BENCH_PACKETS,
        )
        means[psi] = r.mean_lookup_cycles
    assert means[16] < means[1]
    assert means[4] < means[1]
