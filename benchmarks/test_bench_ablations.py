"""E9 benches — design ablations and secondary scenarios."""

import pytest

from repro.experiments.common import run_spal
#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000

BASE = dict(trace="D_75", n_lcs=4, cache_blocks=2048, packets_per_lc=BENCH_PACKETS)


def test_bench_victim_cache_ablation(benchmark):
    """Victim cache on/off (paper Sec. 3.2: avoids most conflict misses)."""

    def both():
        on = run_spal(**BASE, victim_blocks=8)
        off = run_spal(**BASE, victim_blocks=0)
        return on, off

    on, off = benchmark.pedantic(both, rounds=1, iterations=1)
    # The victim cache must not hurt, and usually helps.
    assert on.mean_lookup_cycles <= off.mean_lookup_cycles * 1.05


def test_bench_early_recording_ablation(benchmark):
    """Early W-bit recording cuts fabric traffic (paper Sec. 3.2)."""

    def both():
        on = run_spal(**BASE, early_recording=True)
        off = run_spal(**BASE, early_recording=False)
        return on, off

    on, off = benchmark.pedantic(both, rounds=1, iterations=1)
    assert on.fabric_messages <= off.fabric_messages


@pytest.mark.parametrize("policy", ["lru", "fifo", "random"])
def test_bench_replacement_policy(benchmark, policy):
    """Conventional replacement policies applied after the mix filter."""
    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(**BASE, policy=policy),
        rounds=1,
        iterations=1,
    )
    assert result.mean_lookup_cycles < 40


def test_bench_cache_only_baseline(benchmark):
    """Ref.-[6] baseline: caching without partitioning loses to SPAL."""

    def both():
        spal = run_spal(**BASE)
        cache_only = run_spal(**BASE, partitioned=False)
        return spal, cache_only

    spal, cache_only = benchmark.pedantic(both, rounds=1, iterations=1)
    assert spal.mean_lookup_cycles <= cache_only.mean_lookup_cycles
    assert cache_only.fabric_messages == 0


def test_bench_scenario_10gbps(benchmark):
    """The paper's 10 Gbps scenario follows the same trend."""
    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(**BASE, speed_gbps=10),
        rounds=1,
        iterations=1,
    )
    assert result.mean_lookup_cycles < 40


def test_bench_scenario_dp_fe(benchmark):
    """The 62-cycle DP-trie FE scenario."""
    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(**BASE, fe_cycles=62),
        rounds=1,
        iterations=1,
    )
    assert result.mean_lookup_cycles < 62


def test_bench_fabric_latency_sensitivity(benchmark):
    """Mean lookup time grows with fabric transit latency."""

    def sweep():
        return [
            run_spal(**BASE, fabric="crossbar", fabric_latency=lat).mean_lookup_cycles
            for lat in (1, 16)
        ]

    fast, slow = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert fast <= slow
