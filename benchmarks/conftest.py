"""Shared benchmark fixtures.

Benchmarks regenerate each paper artifact at a small fixed scale so the
suite runs in minutes; the experiment CLI (``python -m repro.experiments``)
is the place for full-scale regeneration.  Each bench asserts the artifact's
qualitative claim, so a timing run doubles as a shape check.
"""

from __future__ import annotations

import pytest

from repro.routing import make_rt1, make_rt2

#: Packets per LC used by simulation benches (small but past warmup).
BENCH_PACKETS = 6_000


@pytest.fixture(scope="session")
def rt1():
    return make_rt1(size=6_000)


@pytest.fixture(scope="session")
def rt2():
    return make_rt2(size=15_000)
