"""E8 bench — the headline claim: SPAL ψ=16 vs a conventional router."""

import sys
from pathlib import Path

import numpy as np

from repro.experiments.common import run_spal
from repro.sim import conventional_mean_cycles, conventional_mpps

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "scripts"))

from profile_sim import HEADLINE, headline_workload, run_engine  # noqa: E402

#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000

#: Packets per LC for the scalar-vs-array engine gate.  Large enough
#: that the loops dominate fixed costs; small enough to keep the bench
#: under ~10s of wall clock.
ENGINE_GATE_PACKETS = 20_000


def test_bench_headline(benchmark):
    """SPAL ψ=16, β=4K nominal over D_75 vs the 40-cycle conventional
    baseline (paper: 4.2× faster, >336 Mpps)."""

    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(
            trace="D_75",
            n_lcs=16,
            cache_blocks=4096,
            packets_per_lc=BENCH_PACKETS,
        ),
        rounds=1,
        iterations=1,
    )
    base = conventional_mean_cycles(40)
    speedup = base / result.mean_lookup_cycles
    # The paper reports 4.2×; the shape requirement is a multi-x win.
    assert speedup > 2.0
    assert result.router_mpps > conventional_mpps(16, 40)


def test_bench_engine_speedup(benchmark):
    """The array-time engine vs the scalar event loop on the headline
    workload (``scripts/profile_sim.py``: D_75, ψ=8, β=4096).

    Results must be bit-identical; the gate asserts events/s.  Measured
    on an idle core the array engine sustains ~4.5-5x the scalar loop
    (~460k vs ~95k events/s at 50k packets/LC); the original 10x target
    is out of reach in pure Python because the scalar *hit* path is
    already only ~7µs/event, so the array engine's batched arrival runs
    cap out near the all-hit floor of ~1µs/event plus the untouched
    miss/fabric chains (see REPRODUCTION.md).  The assertion gates at
    2x — a regression floor well below the measured ratio but above any
    plausible noise on a loaded shared core — using best-of-N loop
    times so a single noisy run cannot fail the gate.
    """
    table, config, streams = headline_workload(ENGINE_GATE_PACKETS)

    def best_of(engine, repeats):
        best = None
        for _ in range(repeats):
            result, sim, loop = run_engine(table, config, streams, engine)
            if best is None or loop < best[2]:
                best = (result, sim, loop)
        return best

    r_s, sim_s, loop_s = best_of("scalar", 2)
    r_a, sim_a, loop_a = benchmark.pedantic(
        best_of, args=("array", 3), rounds=1, iterations=1
    )

    assert sim_s.queue.processed == sim_a.queue.processed
    assert np.array_equal(r_s.latencies, r_a.latencies)
    assert r_s.cache_stats == r_a.cache_stats

    events = sim_a.queue.processed
    ratio = loop_s / loop_a
    sys.stderr.write(
        f"\nengine gate [{HEADLINE['trace']}]: scalar "
        f"{events / loop_s / 1e3:.0f}k ev/s, array "
        f"{events / loop_a / 1e3:.0f}k ev/s, {ratio:.2f}x\n"
    )
    assert ratio >= 2.0, (
        f"array engine only {ratio:.2f}x the scalar loop "
        f"({loop_a:.2f}s vs {loop_s:.2f}s over {events} events)"
    )
