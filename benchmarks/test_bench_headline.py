"""E8 bench — the headline claim: SPAL ψ=16 vs a conventional router."""

from repro.experiments.common import run_spal
from repro.sim import conventional_mean_cycles, conventional_mpps
#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000


def test_bench_headline(benchmark):
    """SPAL ψ=16, β=4K nominal over D_75 vs the 40-cycle conventional
    baseline (paper: 4.2× faster, >336 Mpps)."""

    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(
            trace="D_75",
            n_lcs=16,
            cache_blocks=4096,
            packets_per_lc=BENCH_PACKETS,
        ),
        rounds=1,
        iterations=1,
    )
    base = conventional_mean_cycles(40)
    speedup = base / result.mean_lookup_cycles
    # The paper reports 4.2×; the shape requirement is a multi-x win.
    assert speedup > 2.0
    assert result.router_mpps > conventional_mpps(16, 40)
