"""E12/E13/E14 benches — extension experiments."""

from repro.experiments import (
    run_ipv6_storage,
    run_lc_fill_sweep,
    run_seed_robustness,
)


def test_bench_lc_fill_sweep(benchmark):
    """E12: LC-trie fill-factor tradeoff."""
    result = benchmark.pedantic(
        run_lc_fill_sweep, kwargs=dict(n_addresses=800), rounds=1, iterations=1
    )
    numeric = [r for r in result.rows if isinstance(r["fill_factor"], float)]
    # Lower fill factor buys accesses with nodes.
    assert numeric[0]["nodes"] >= numeric[-1]["nodes"]
    assert numeric[0]["mean_accesses"] <= numeric[-1]["mean_accesses"]


def test_bench_ipv6_storage(benchmark):
    """E13: IPv6 per-LC savings exceed same-size IPv4 savings."""
    result = benchmark.pedantic(
        run_ipv6_storage, kwargs=dict(size=1500), rounds=1, iterations=1
    )
    by_key = {(r["table"], r["trie"], r["psi"]): r for r in result.rows}
    assert (
        by_key[("IPv6", "binary", 16)]["saving_kb"]
        > by_key[("IPv4", "binary", 16)]["saving_kb"]
    )


def test_bench_seed_robustness(benchmark):
    """E14: conclusions stable across independent trace draws."""
    result = benchmark.pedantic(
        run_seed_robustness,
        kwargs=dict(trace="D_75", n_lcs=4, n_seeds=3, packets_per_lc=4000),
        rounds=1,
        iterations=1,
    )
    means = [
        r["mean_cycles"] for r in result.rows
        if isinstance(r["mean_cycles"], float)
    ]
    assert max(means) / min(means) < 1.3


def test_bench_aggregation(benchmark):
    """E15: ORTC aggregation composed with partitioning."""
    from repro.experiments import run_aggregation

    result = benchmark.pedantic(
        run_aggregation, kwargs=dict(psi=8), rounds=1, iterations=1
    )
    by_key = {(r["table"], r["stage"]): r["routes"] for r in result.rows}
    for table in ("RT_1", "RT_2"):
        assert by_key[(table, "aggregated")] <= by_key[(table, "original")]


def test_bench_replication(benchmark):
    """E16: replication cures the psi=3 hotspot."""
    from repro.experiments import run_replication

    result = benchmark.pedantic(
        run_replication, kwargs=dict(packets_per_lc=6000), rounds=1, iterations=1
    )
    by_variant = {r["variant"]: r["mean_cycles"] for r in result.rows}
    assert (
        by_variant["paper-exact bits, r=2"]
        < by_variant["paper-exact (2 bits, r=1)"]
    )


def test_bench_scorecard(benchmark):
    """The one-command regression gate over every reproduced claim."""
    from repro.experiments import run_scorecard

    result = benchmark.pedantic(
        run_scorecard, kwargs=dict(packets_per_lc=4000), rounds=1, iterations=1
    )
    assert all(r["status"] == "PASS" for r in result.rows)


def test_bench_stride_optimization(benchmark):
    """E19: the stride DP beats (or ties) the 16/8/8 habit at 3 levels."""
    from repro.experiments import run_stride_optimization

    result = benchmark.pedantic(
        run_stride_optimization, rounds=1, iterations=1
    )
    rt1 = [r for r in result.rows if r["table"] == "RT_1"]
    habit = next(r for r in rt1 if "habit" in r["strides"])
    opt = next(r for r in rt1 if r["levels"] == 3 and "habit" not in r["strides"])
    assert opt["entries"] <= habit["entries"]
