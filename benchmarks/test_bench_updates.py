"""E10 benches — update sensitivity and selective invalidation."""

from repro.experiments import (
    run_invalidation_comparison,
    run_update_sensitivity,
)

#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000


def test_bench_update_sensitivity(benchmark):
    """Mean lookup time vs routing-update rate (flush-on-update policy)."""
    result = benchmark.pedantic(
        run_update_sensitivity,
        kwargs=dict(packets_per_lc=BENCH_PACKETS, n_lcs=4),
        rounds=1,
        iterations=1,
    )
    means = [r["mean_cycles"] for r in result.rows]
    # The paper's own operating range (20-100/s) must be essentially free.
    assert means[1] <= means[0] * 1.1
    # Very frequent updates degrade lookups (the Sec. 3.2 caveat).
    assert means[-1] > means[0]


def test_bench_invalidation_policies(benchmark):
    """Flush vs selective invalidation at high update rates."""
    result = benchmark.pedantic(
        run_invalidation_comparison,
        kwargs=dict(packets_per_lc=BENCH_PACKETS, n_lcs=4),
        rounds=1,
        iterations=1,
    )
    by_key = {(r["updates_per_s"], r["policy"]): r["mean_cycles"]
              for r in result.rows}
    for rate in (10_000, 50_000):
        assert by_key[(rate, "selective")] <= by_key[(rate, "flush")]
