"""Micro-benchmarks for the hot components: trie builds/lookups, the
LR-cache pipeline, the event engine and the partitioner helpers."""

import time

import numpy as np
import pytest

from repro.core import LOC, REM, LRCache, pattern_of
from repro.routing import addresses_matching
from repro.sim import EventQueue
from repro.tries import (
    BinaryTrie,
    Dir24_8,
    DPTrie,
    HashReferenceMatcher,
    LCTrie,
    LuleaTrie,
    MultibitTrie,
)

FACTORIES = {
    "binary": BinaryTrie,
    "dp": DPTrie,
    "lulea": LuleaTrie,
    "lc": lambda t: LCTrie(t, fill_factor=0.25),
    "multibit": MultibitTrie,
    "dir24_16": lambda t: Dir24_8(t, first_stride=16),
}


@pytest.mark.parametrize("name", list(FACTORIES))
def test_bench_trie_build(benchmark, rt1, name):
    matcher = benchmark(FACTORIES[name], rt1)
    assert matcher.storage_bytes() > 0


@pytest.mark.parametrize("name", list(FACTORIES))
def test_bench_trie_lookup(benchmark, rt1, name):
    matcher = FACTORIES[name](rt1)
    addrs = [int(a) for a in addresses_matching(rt1, 2000, seed=1)]

    def sweep():
        total = 0
        for a in addrs:
            total += matcher.lookup(a)
        return total

    benchmark(sweep)


#: Structures with a vectorized batch kernel (the rest fall back to the
#: scalar loop inside lookup_batch).
BATCH_FACTORIES = {
    "binary": BinaryTrie,
    "lulea": LuleaTrie,
    "lc": lambda t: LCTrie(t, fill_factor=0.25),
    "multibit": MultibitTrie,
    "ref": HashReferenceMatcher,
}


@pytest.mark.parametrize("name", list(BATCH_FACTORIES))
def test_bench_trie_lookup_batch(benchmark, rt1, name):
    """Batched lookups over the same stream as the scalar bench."""
    matcher = BATCH_FACTORIES[name](rt1)
    addrs = np.asarray(addresses_matching(rt1, 2000, seed=1), dtype=np.uint64)
    matcher.lookup_batch(addrs[:1])  # compile outside the timed region

    hops = benchmark(matcher.lookup_batch, addrs)
    assert hops.shape == addrs.shape


@pytest.mark.parametrize("name", list(BATCH_FACTORIES))
def test_batch_speedup_over_scalar(name, rt1):
    """Acceptance floor: every batch kernel is >= 5x the scalar loop at
    default scale (measured in addresses/s over a large batch)."""
    matcher = BATCH_FACTORIES[name](rt1)
    rng = np.random.default_rng(9)
    addrs = rng.integers(0, 1 << 32, size=200_000, dtype=np.uint64)
    matcher.lookup_batch(addrs[:1])  # compile before timing

    start = time.perf_counter()
    hops = matcher.lookup_batch(addrs)
    batch_s = time.perf_counter() - start

    scalar_addrs = addrs[:20_000]
    lookup = matcher.lookup
    start = time.perf_counter()
    want = [lookup(int(a)) for a in scalar_addrs]
    scalar_s = (time.perf_counter() - start) * (len(addrs) / len(scalar_addrs))

    np.testing.assert_array_equal(hops[: len(scalar_addrs)], want)
    speedup = scalar_s / batch_s
    rate = len(addrs) / batch_s / 1e6
    print(f"{name}: {rate:.1f} Maddrs/s, {speedup:.1f}x over scalar")
    assert speedup >= 5.0, f"{name} batch kernel only {speedup:.1f}x"


def test_bench_lr_cache_pipeline(benchmark):
    """Probe/allocate/fill over a Zipf-ish address stream."""
    rng = np.random.default_rng(0)
    ranks = np.arange(1, 5001, dtype=np.float64)
    p = ranks**-1.2
    p /= p.sum()
    stream = rng.choice(np.arange(5000), size=20000, p=p)

    def pipeline():
        cache = LRCache(n_blocks=1024, victim_blocks=8)
        for a in stream:
            a = int(a)
            entry = cache.probe(a)
            if entry is None:
                e = cache.allocate(a, LOC if a % 2 else REM)
                if e is not None:
                    cache.fill(e, a % 16)
        return cache.stats.hit_rate

    hit_rate = benchmark(pipeline)
    assert hit_rate > 0.5


def test_bench_event_queue(benchmark):
    def drain():
        q = EventQueue()
        sink = []
        for t in range(10000):
            q.schedule(t % 997, sink.append, t)
        q.run()
        return len(sink)

    assert benchmark(drain) == 10000


def test_bench_trie_comparison_report(benchmark, rt1):
    """E11: the Sec. 2.1 background table across all structures."""
    from repro.tries import compare_structures

    rows = benchmark.pedantic(
        compare_structures, args=(rt1,), kwargs=dict(n_addresses=1500),
        rounds=1, iterations=1,
    )
    by_name = {r["name"]: r for r in rows}
    # The paper's qualitative orderings.
    assert by_name["DIR-24-8"]["storage_kb"] > 32 * 1024
    assert by_name["DIR-24-8"]["worst_accesses"] <= 2
    assert by_name["Lulea"]["storage_kb"] < by_name["DP"]["storage_kb"]
    assert by_name["Lulea"]["mean_accesses"] < by_name["DP"]["mean_accesses"]


def test_bench_pattern_of(benchmark):
    addrs = list(range(0, 1 << 20, 37))

    def sweep():
        total = 0
        for a in addrs:
            total += pattern_of(a, [8, 14, 17, 21], 32)
        return total

    benchmark(sweep)
