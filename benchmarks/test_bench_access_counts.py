"""E4 bench — Sec. 5.1: memory accesses per lookup (Lulea 6.2/6.6, DP ≈16)."""

import pytest

from repro.routing import addresses_matching
from repro.tries import DPTrie, LuleaTrie, matching_cycles


@pytest.fixture(scope="module")
def probe_addrs(request):
    return None  # replaced per-test via rt fixtures


def _addrs(table, n=3000):
    return [int(a) for a in addresses_matching(table, n, seed=4)]


def test_bench_lulea_lookups(benchmark, rt2):
    """Lulea lookup throughput + the paper's ≈6.6-access / 40-cycle point."""
    trie = LuleaTrie(rt2)
    addrs = _addrs(rt2)

    def sweep():
        trie.counter.reset()
        for a in addrs:
            trie.lookup(a)
        return trie.counter.mean_accesses

    mean = benchmark(sweep)
    assert 4.0 <= mean <= 9.0
    assert 35 <= matching_cycles(mean) <= 46  # paper: ~40 cycles

def test_bench_dp_lookups(benchmark, rt2):
    """DP-trie lookup throughput + the paper's ≈16-access / 62-cycle point."""
    trie = DPTrie(rt2)
    addrs = _addrs(rt2)

    def sweep():
        trie.counter.reset()
        for a in addrs:
            trie.lookup(a)
        return trie.counter.mean_accesses

    mean = benchmark(sweep)
    assert 10.0 <= mean <= 22.0
    assert 48 <= matching_cycles(mean) <= 78  # paper: ~62 cycles


def test_bench_worst_case_partitioned(benchmark, rt1):
    """E4b: the possibly-shorter-worst-case claim under partitioning."""
    from repro.core import partition_table

    plan = partition_table(rt1, 16)
    whole = LuleaTrie(rt1)
    addrs = _addrs(rt1, 2000)

    def measure():
        whole.counter.reset()
        for a in addrs:
            whole.lookup(a)
        whole_worst = whole.counter.max_accesses
        part_worst = 0
        for part in plan.tables:
            m = LuleaTrie(part)
            sub = [int(x) for x in addresses_matching(part, 200, seed=6)]
            m.measure(sub)
            part_worst = max(part_worst, m.counter.max_accesses)
        return whole_worst, part_worst

    whole_worst, part_worst = benchmark(measure)
    # "May possibly shorten the worst-case lookup time": partitioning must
    # never blow the worst case up (both sit within Lulea's 12-access bound).
    assert part_worst <= max(whole_worst * 1.5, 12)
