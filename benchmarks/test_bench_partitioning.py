"""E1/E2 benches — Sec. 4: bit selection and per-partition storage."""

import pytest

from repro.core import partition_table, select_partition_bits
from repro.tries import DPTrie, LCTrie, LuleaTrie


def test_bench_bit_selection(benchmark, rt2):
    """E1: choose 4 control bits for a 16-LC router over RT_2."""
    bits = benchmark(select_partition_bits, rt2, 4)
    assert len(bits) == 4
    # Criterion (1) rules out high positions on backbone tables.
    assert all(b <= 24 for b in bits)


def test_bench_partition_rt2_psi16(benchmark, rt2):
    """E1: full 16-way partitioning of RT_2."""
    plan = benchmark(partition_table, rt2, 16)
    sizes = plan.partition_sizes()
    # Every partition must be a small fraction of the whole table.
    assert max(sizes) < len(rt2) / 4


@pytest.mark.parametrize(
    "trie_name,factory",
    [
        ("DP", DPTrie),
        ("LL", LuleaTrie),
        ("LC", lambda t: LCTrie(t, fill_factor=0.25)),
    ],
)
def test_bench_partition_storage(benchmark, rt1, trie_name, factory):
    """E2: per-partition trie builds for RT_1, ψ=4 (the paper's storage
    table), timed end to end."""
    plan = partition_table(rt1, 4)

    def build_all():
        return [factory(t).storage_bytes() for t in plan.tables]

    per_partition = benchmark(build_all)
    whole = factory(rt1).storage_bytes()
    # The paper's headline: every partition trie is far smaller than the
    # whole-table trie.
    assert max(per_partition) < whole
