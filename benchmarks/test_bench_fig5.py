"""E6 bench — Fig. 5: mean lookup time vs LR-cache size β (ψ=16)."""

import pytest

from repro.experiments.common import mix_for_cache, run_spal
#: Packets per LC: small but enough to get past the warmup window.
BENCH_PACKETS = 6_000


@pytest.mark.parametrize("beta", [1024, 2048, 4096, 8192])
def test_bench_fig5_point(benchmark, beta):
    """One β point of Fig. 5 over the B_L trace."""
    result = benchmark.pedantic(
        run_spal,
        kwargs=dict(
            trace="B_L",
            n_lcs=16,
            cache_blocks=beta,
            mix=mix_for_cache(beta),
            packets_per_lc=BENCH_PACKETS,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.packets == 16 * BENCH_PACKETS * 9 // 10


def test_bench_fig5_monotone():
    """Fig. 5's finding: a larger β consistently yields shorter lookups."""
    means = []
    for beta in (1024, 4096, 8192):
        r = run_spal(
            "D_81",
            n_lcs=16,
            cache_blocks=beta,
            mix=mix_for_cache(beta),
            packets_per_lc=BENCH_PACKETS,
        )
        means.append(r.mean_lookup_cycles)
    assert means[0] > means[-1]
