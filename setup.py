"""Shim for environments without the `wheel` package (pip's PEP-517
editable path needs it): `python setup.py develop` installs from source
offline.  All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
